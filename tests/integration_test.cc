/**
 * @file
 * Integration tests: compile each design and run it on the simulator,
 * checking the end-to-end performance ordering the paper reports
 * (Basic < Static < Elk-Dyn <= Elk-Full <= Ideal) and the simulator's
 * invariants under real compiled programs.
 */
#include <gtest/gtest.h>

#include "elk/compiler.h"
#include "runtime/executor.h"
#include "runtime/metrics.h"
#include "test_helpers.h"

namespace elk {
namespace {

class IntegrationTest : public ::testing::Test {
  protected:
    IntegrationTest()
        : graph_(graph::build_decode_graph(testing::tiny_llm(), 8, 512))
    {
        cfg_ = testing::CompilerHarness::tiny().cfg;
        compiler_ = std::make_unique<compiler::Compiler>(graph_, cfg_);
        machine_ = std::make_unique<sim::Machine>(cfg_);
        ideal_machine_ =
            std::make_unique<sim::Machine>(cfg_, /*ideal=*/true);
    }

    sim::SimResult
    run(compiler::Mode mode)
    {
        compiler::CompileOptions opts;
        opts.mode = mode;
        opts.max_orders = 12;
        auto result = compiler_->compile(opts);
        const sim::Machine& m = mode == compiler::Mode::kIdeal
                                    ? *ideal_machine_
                                    : *machine_;
        return runtime::run_plan(m, graph_, result.plan,
                                 compiler_->context());
    }

    graph::Graph graph_;
    hw::ChipConfig cfg_;
    std::unique_ptr<compiler::Compiler> compiler_;
    std::unique_ptr<sim::Machine> machine_;
    std::unique_ptr<sim::Machine> ideal_machine_;
};

TEST_F(IntegrationTest, DesignOrdering)
{
    auto basic = run(compiler::Mode::kBasic);
    auto stat = run(compiler::Mode::kStatic);
    auto dyn = run(compiler::Mode::kElkDyn);
    auto full = run(compiler::Mode::kElkFull);
    auto ideal = run(compiler::Mode::kIdeal);

    // The paper's headline ordering (Fig. 17). Allow small tolerance
    // between adjacent designs; the ends must be clearly ordered.
    EXPECT_LE(stat.total_time, basic.total_time * 1.05);
    EXPECT_LE(dyn.total_time, stat.total_time * 1.05);
    EXPECT_LE(full.total_time, dyn.total_time * 1.02);
    // Ideal is an analytic roofline reference, not a strict
    // dominator of every simulated schedule.
    EXPECT_LE(ideal.total_time, full.total_time * 1.03);
    EXPECT_LT(full.total_time, basic.total_time);
}

TEST_F(IntegrationTest, ElkPlansRespectMemory)
{
    for (auto mode : {compiler::Mode::kBasic, compiler::Mode::kStatic,
                      compiler::Mode::kElkDyn, compiler::Mode::kElkFull}) {
        auto r = run(mode);
        EXPECT_FALSE(r.memory_exceeded)
            << compiler::mode_name(mode) << " peak "
            << r.peak_sram_per_core;
    }
}

TEST_F(IntegrationTest, ElkImprovesHbmUtilization)
{
    auto basic = run(compiler::Mode::kBasic);
    auto full = run(compiler::Mode::kElkFull);
    EXPECT_GT(full.hbm_util, basic.hbm_util * 0.99);
}

TEST_F(IntegrationTest, BreakdownConsistent)
{
    for (auto mode : {compiler::Mode::kBasic, compiler::Mode::kElkFull}) {
        auto r = run(mode);
        EXPECT_NEAR(r.preload_only + r.execute_only + r.overlapped,
                    r.total_time, 1e-9 + r.total_time * 1e-6);
        EXPECT_GE(r.preload_only, 0.0);
        EXPECT_GE(r.execute_only, 0.0);
        EXPECT_GE(r.overlapped, 0.0);
    }
}

TEST_F(IntegrationTest, ElkOverlapsMoreThanBasic)
{
    auto basic = run(compiler::Mode::kBasic);
    auto full = run(compiler::Mode::kElkFull);
    double basic_overlap_frac = basic.overlapped / basic.total_time;
    double full_overlap_frac = full.overlapped / full.total_time;
    EXPECT_GE(full_overlap_frac, basic_overlap_frac * 0.95);
}

TEST_F(IntegrationTest, TimingsWellOrderedPerOp)
{
    compiler::CompileOptions opts;
    opts.mode = compiler::Mode::kElkFull;
    opts.max_orders = 12;
    auto result = compiler_->compile(opts);
    auto r = runtime::run_plan(*machine_, graph_, result.plan,
                               compiler_->context());
    for (int i = 0; i < graph_.size(); ++i) {
        const auto& tm = r.timing[i];
        EXPECT_LE(tm.pre_start, tm.pre_end + 1e-12);
        EXPECT_LE(tm.pre_end, tm.exec_start + 1e-9) << "op " << i;
        EXPECT_LE(tm.exec_start, tm.exec_end + 1e-12);
        if (i > 0) {
            EXPECT_GE(tm.exec_start,
                      r.timing[i - 1].exec_end - 1e-9);
        }
    }
}

TEST_F(IntegrationTest, MeshMachineRuns)
{
    hw::ChipConfig mesh_cfg = cfg_;
    mesh_cfg.topology = hw::TopologyKind::kMesh2D;
    mesh_cfg.mesh_link_bw = cfg_.inter_core_link_bw * 4;
    compiler::Compiler mesh_compiler(graph_, mesh_cfg);
    sim::Machine mesh_machine(mesh_cfg);
    compiler::CompileOptions opts;
    opts.mode = compiler::Mode::kElkDyn;
    auto result = mesh_compiler.compile(opts);
    auto r = runtime::run_plan(mesh_machine, graph_, result.plan,
                               mesh_compiler.context());
    EXPECT_GT(r.total_time, 0.0);
    EXPECT_FALSE(r.memory_exceeded);
}

TEST_F(IntegrationTest, MetricsHelpers)
{
    auto basic = run(compiler::Mode::kBasic);
    auto ideal = run(compiler::Mode::kIdeal);
    EXPECT_GE(runtime::speedup(ideal, basic), 1.0);
    EXPECT_LE(runtime::fraction_of_ideal(basic, ideal), 1.0);
    EXPECT_FALSE(runtime::ms(basic.total_time).empty());
    EXPECT_EQ(runtime::pct(0.5), "50.0%");
}

}  // namespace
}  // namespace elk
