/**
 * @file
 * Engine and machine edge cases: empty programs, zero-byte preloads,
 * reordered issue patterns, ideal split-fabric accounting, utilization
 * bounds, and multi-chip capacity scaling.
 */
#include <gtest/gtest.h>

#include "sim/engine.h"
#include "sim/machine.h"

namespace elk::sim {
namespace {

class EngineEdgeTest : public ::testing::Test {
  protected:
    EngineEdgeTest() : machine_(hw::ChipConfig::tiny(16)) {}

    SimOp
    make_op(int id, double dram, double exec_time)
    {
        SimOp op;
        op.op_id = id;
        op.dram_bytes = dram;
        op.delivery_bytes = dram;
        op.exec_local_time = exec_time;
        op.preload_space = 512;
        op.exec_space = 1024;
        op.flops = 1e6;
        return op;
    }

    Machine machine_;
};

TEST_F(EngineEdgeTest, EmptyProgram)
{
    SimProgram prog;
    prog.finalize_default_order();
    Engine engine(machine_);
    SimResult r = engine.run(prog);
    EXPECT_DOUBLE_EQ(r.total_time, 0.0);
    EXPECT_EQ(r.peak_sram_per_core, 0u);
}

TEST_F(EngineEdgeTest, AllZeroBytePreloads)
{
    SimProgram prog;
    for (int i = 0; i < 5; ++i) {
        prog.ops.push_back(make_op(i, 0, 1e-4));
    }
    prog.finalize_default_order();
    Engine engine(machine_);
    SimResult r = engine.run(prog);
    EXPECT_NEAR(r.total_time, 5e-4, 1e-9);
    EXPECT_DOUBLE_EQ(r.hbm_util, 0.0);
}

TEST_F(EngineEdgeTest, ReorderedPreloadsExecuteInOrder)
{
    const auto& cfg = machine_.config();
    double bytes = cfg.hbm_total_bw * 1e-4;
    SimProgram prog;
    for (int i = 0; i < 3; ++i) {
        prog.ops.push_back(make_op(i, bytes, 1e-3));
    }
    // Preload op2 before op1 (both before execute(0) completes).
    prog.preload_order = {0, 2, 1};
    prog.issue_slot = {0, 0, 0};
    Engine engine(machine_);
    SimResult r = engine.run(prog);
    // Preloads happen in issue order...
    EXPECT_LE(r.timing[2].pre_end, r.timing[1].pre_start + 1e-12);
    // ...but executes stay in execution order.
    EXPECT_LE(r.timing[0].exec_end, r.timing[1].exec_start + 1e-12);
    EXPECT_LE(r.timing[1].exec_end, r.timing[2].exec_start + 1e-12);
}

TEST_F(EngineEdgeTest, UtilizationsBounded)
{
    const auto& cfg = machine_.config();
    SimProgram prog;
    for (int i = 0; i < 6; ++i) {
        SimOp op = make_op(i, cfg.hbm_total_bw * 1e-4, 2e-4);
        op.fetch_bytes = machine_.peer_capacity() * 1e-4;
        op.distribute_bytes = machine_.peer_capacity() * 0.5e-4;
        prog.ops.push_back(op);
    }
    prog.finalize_default_order();
    Engine engine(machine_);
    SimResult r = engine.run(prog);
    EXPECT_GE(r.hbm_util, 0.0);
    EXPECT_LE(r.hbm_util, 1.0 + 1e-9);
    EXPECT_GE(r.noc_util, 0.0);
    EXPECT_LE(r.noc_util, 1.0 + 1e-9);
    EXPECT_NEAR(r.noc_util, r.noc_util_preload + r.noc_util_peer, 1e-9);
}

TEST_F(EngineEdgeTest, IdealFabricSeparatesTraffic)
{
    // On a split-fabric machine, a saturating peer flow must not slow
    // the preload side.
    hw::ChipConfig cfg = machine_.config();
    Machine ideal(cfg, /*ideal_split_fabric=*/true);
    double dram = cfg.hbm_total_bw * 1e-3;

    SimProgram prog;
    SimOp op0 = make_op(0, 0, 1e-4);
    op0.fetch_bytes = ideal.peer_capacity() * 5e-3;  // long fetch
    prog.ops.push_back(op0);
    prog.ops.push_back(make_op(1, dram, 1e-4));
    prog.preload_order = {0, 1};
    prog.issue_slot = {0, 0};

    Engine engine(ideal);
    SimResult r = engine.run(prog);
    // Preload of op1 proceeds at full DRAM speed despite the fetch.
    EXPECT_NEAR(r.timing[1].pre_end - r.timing[1].pre_start,
                cfg.hbm_access_latency_s + 1e-3, 1e-6);
}

TEST_F(EngineEdgeTest, PeakMemoryTracksWindow)
{
    SimProgram prog;
    for (int i = 0; i < 4; ++i) {
        SimOp op = make_op(i, 0, 1e-4);
        op.preload_space = 1000;
        op.exec_space = 3000;
        prog.ops.push_back(op);
    }
    // All preloads issued up front: 3 live preloads + 1 executing.
    prog.preload_order = {0, 1, 2, 3};
    prog.issue_slot = {0, 0, 0, 0};
    Engine engine(machine_);
    SimResult r = engine.run(prog);
    EXPECT_EQ(r.peak_sram_per_core, 3u * 1000 + 3000);
}

TEST(MachineScalingTest, CapacitiesScaleWithChips)
{
    hw::ChipConfig one = hw::ChipConfig::tiny(16);
    hw::ChipConfig four = one;
    four.num_chips = 4;
    four.hbm_total_bw *= 4;
    Machine m1(one);
    Machine m4(four);
    EXPECT_NEAR(m4.peer_capacity(), 4.0 * m1.peer_capacity(),
                m1.peer_capacity() * 1e-9);
    EXPECT_NEAR(m4.delivery_capacity(), 4.0 * m1.delivery_capacity(),
                m1.delivery_capacity() * 1e-9);
}

TEST(MachineScalingTest, MeshTighterThanAllToAll)
{
    hw::ChipConfig cfg = hw::ChipConfig::ipu_pod4();
    Machine a2a(cfg);
    cfg.topology = hw::TopologyKind::kMesh2D;
    Machine mesh(cfg);
    EXPECT_LT(mesh.peer_capacity(), a2a.peer_capacity());
    EXPECT_LT(mesh.delivery_capacity(), a2a.delivery_capacity());
}

TEST(SimProgramValidateTest, RejectsDuplicatePreloadEntries)
{
    SimProgram prog;
    prog.ops.resize(2);
    prog.preload_order = {0, 0};  // op 1 never preloaded, op 0 twice
    prog.issue_slot = {0, 0};
    EXPECT_DEATH(prog.validate(), "duplicate preload entry");
}

TEST(SimProgramValidateTest, RejectsIssueSlotPastProgramEnd)
{
    SimProgram prog;
    prog.ops.resize(2);
    prog.preload_order = {0, 1};
    prog.issue_slot = {0, 5};  // references an execute after the end
    EXPECT_DEATH(prog.validate(), "issue slot past program end");
}

TEST(SimProgramValidateTest, RejectsOutOfRangeOrderEntry)
{
    SimProgram prog;
    prog.ops.resize(2);
    prog.preload_order = {0, 2};
    prog.issue_slot = {0, 1};
    EXPECT_DEATH(prog.validate(), "bad preload order entry");
}

}  // namespace
}  // namespace elk::sim
