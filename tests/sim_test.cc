/**
 * @file
 * Unit tests for the simulator: fluid network sharing, machine
 * resource construction, and engine scheduling semantics (§4.5 rules).
 */
#include <gtest/gtest.h>

#include "sim/engine.h"
#include "sim/machine.h"
#include "sim/network.h"

namespace elk::sim {
namespace {

TEST(FluidNetworkTest, SingleFlowGetsFullCapacity)
{
    FluidNetwork net({100.0});
    FlowId f = net.add_flow(50.0, {{0, 1.0}}, FlowTag::kExecFetch);
    EXPECT_DOUBLE_EQ(net.flow_rate(f), 100.0);
    EXPECT_DOUBLE_EQ(net.time_to_next_completion(), 0.5);
}

TEST(FluidNetworkTest, TwoFlowsShareEqually)
{
    FluidNetwork net({100.0});
    FlowId a = net.add_flow(100.0, {{0, 1.0}}, FlowTag::kExecFetch);
    FlowId b = net.add_flow(100.0, {{0, 1.0}}, FlowTag::kHbmPreload);
    EXPECT_DOUBLE_EQ(net.flow_rate(a), 50.0);
    EXPECT_DOUBLE_EQ(net.flow_rate(b), 50.0);
}

TEST(FluidNetworkTest, CompletionFreesCapacity)
{
    FluidNetwork net({100.0});
    FlowId a = net.add_flow(10.0, {{0, 1.0}}, FlowTag::kExecFetch);
    FlowId b = net.add_flow(100.0, {{0, 1.0}}, FlowTag::kExecFetch);
    net.advance(10.0 / 50.0);  // flow a completes
    EXPECT_FALSE(net.flow_active(a));
    EXPECT_TRUE(net.flow_active(b));
    EXPECT_DOUBLE_EQ(net.flow_rate(b), 100.0);
}

TEST(FluidNetworkTest, MultiResourceBottleneck)
{
    // Flow limited by the tighter of two resources.
    FluidNetwork net({100.0, 10.0});
    FlowId f =
        net.add_flow(10.0, {{0, 1.0}, {1, 1.0}}, FlowTag::kHbmPreload);
    EXPECT_DOUBLE_EQ(net.flow_rate(f), 10.0);
}

TEST(FluidNetworkTest, WeightedConsumption)
{
    // Weight 2 on a capacity-100 resource limits the rate to 50.
    FluidNetwork net({100.0});
    FlowId f = net.add_flow(10.0, {{0, 2.0}}, FlowTag::kHbmPreload);
    EXPECT_DOUBLE_EQ(net.flow_rate(f), 50.0);
}

TEST(FluidNetworkTest, MaxMinWithHeterogeneousDemands)
{
    // Flow a uses both resources, flow b only resource 0. Resource 1
    // caps a at 20, leaving 80 for b on resource 0.
    FluidNetwork net({100.0, 20.0});
    FlowId a =
        net.add_flow(100.0, {{0, 1.0}, {1, 1.0}}, FlowTag::kHbmPreload);
    FlowId b = net.add_flow(100.0, {{0, 1.0}}, FlowTag::kExecFetch);
    EXPECT_DOUBLE_EQ(net.flow_rate(a), 20.0);
    EXPECT_DOUBLE_EQ(net.flow_rate(b), 80.0);
}

TEST(FluidNetworkTest, UsageAttribution)
{
    FluidNetwork net({100.0});
    net.add_flow(100.0, {{0, 1.0}}, FlowTag::kHbmPreload);
    net.add_flow(100.0, {{0, 1.0}}, FlowTag::kExecFetch);
    EXPECT_DOUBLE_EQ(net.resource_usage(0, FlowTag::kHbmPreload), 50.0);
    EXPECT_DOUBLE_EQ(net.resource_usage(0), 100.0);
}

TEST(MachineTest, CapacitiesAndWeights)
{
    hw::ChipConfig cfg = hw::ChipConfig::tiny(16);
    Machine m(cfg);
    auto caps = m.capacities();
    ASSERT_EQ(caps.size(), 2u);
    EXPECT_DOUBLE_EQ(caps[Resources::kHbmDram], cfg.hbm_total_bw);
    EXPECT_DOUBLE_EQ(caps[Resources::kFabric], 1.0);

    // A non-replicated preload consumes fabric at 1/delivery_capacity.
    auto w = m.preload_weights(100.0, 100.0);
    EXPECT_DOUBLE_EQ(w[Resources::kHbmDram], 1.0);
    EXPECT_DOUBLE_EQ(w[Resources::kFabric], 1.0 / m.delivery_capacity());
    // 4x broadcast replication quadruples fabric consumption.
    auto w4 = m.preload_weights(100.0, 400.0);
    EXPECT_DOUBLE_EQ(w4[Resources::kFabric],
                     4.0 / m.delivery_capacity());
}

TEST(MachineTest, IdealSplitsFabric)
{
    hw::ChipConfig cfg = hw::ChipConfig::tiny(16);
    Machine m(cfg, /*ideal_split_fabric=*/true);
    EXPECT_EQ(m.capacities().size(), 3u);
    EXPECT_NE(m.fabric_resource_for_preload(),
              m.fabric_resource_for_peer());
}

class EngineTest : public ::testing::Test {
  protected:
    EngineTest() : machine_(hw::ChipConfig::tiny(16)) {}

    SimOp
    make_op(int id, double dram, double exec_time)
    {
        SimOp op;
        op.op_id = id;
        op.dram_bytes = dram;
        op.delivery_bytes = dram;
        op.exec_local_time = exec_time;
        op.preload_space = 1024;
        op.exec_space = 2048;
        op.flops = 1e6;
        return op;
    }

    Machine machine_;
};

TEST_F(EngineTest, SequentialExecutes)
{
    SimProgram prog;
    prog.ops.push_back(make_op(0, 0, 1e-3));
    prog.ops.push_back(make_op(1, 0, 2e-3));
    prog.finalize_default_order();
    Engine engine(machine_);
    SimResult r = engine.run(prog);
    EXPECT_NEAR(r.total_time, 3e-3, 1e-9);
    EXPECT_NEAR(r.timing[1].exec_start, 1e-3, 1e-9);
    EXPECT_LE(r.timing[0].exec_end, r.timing[1].exec_start + 1e-12);
}

TEST_F(EngineTest, PreloadBlocksOwnExecute)
{
    const auto& cfg = machine_.config();
    double bytes = cfg.hbm_total_bw * 1e-3;  // 1 ms of DRAM time
    SimProgram prog;
    prog.ops.push_back(make_op(0, bytes, 1e-4));
    prog.finalize_default_order();
    Engine engine(machine_);
    SimResult r = engine.run(prog);
    // exec waits for preload: total >= latency + dram + exec.
    EXPECT_GE(r.total_time,
              cfg.hbm_access_latency_s + 1e-3 + 1e-4 - 1e-9);
    EXPECT_GE(r.timing[0].exec_start, r.timing[0].pre_end - 1e-12);
}

TEST_F(EngineTest, PreloadOverlapsEarlierExecute)
{
    const auto& cfg = machine_.config();
    double bytes = cfg.hbm_total_bw * 1e-3;
    SimProgram prog;
    prog.ops.push_back(make_op(0, 0, 5e-3));      // long execute
    prog.ops.push_back(make_op(1, bytes, 1e-4));  // preload during it
    prog.preload_order = {0, 1};
    prog.issue_slot = {0, 0};  // both issued before execute(0)
    Engine engine(machine_);
    SimResult r = engine.run(prog);
    // Preload of op 1 overlaps execute(0): total ~ 5ms + 0.1ms.
    EXPECT_LT(r.total_time, 5.5e-3);
    EXPECT_GT(r.overlapped, 0.5e-3);
}

TEST_F(EngineTest, IssueSlotBlocksPreload)
{
    const auto& cfg = machine_.config();
    double bytes = cfg.hbm_total_bw * 1e-3;
    SimProgram prog;
    prog.ops.push_back(make_op(0, 0, 5e-3));
    prog.ops.push_back(make_op(1, bytes, 1e-4));
    prog.preload_order = {0, 1};
    prog.issue_slot = {0, 1};  // preload(1) issued after execute(0)
    Engine engine(machine_);
    SimResult r = engine.run(prog);
    EXPECT_GE(r.timing[1].pre_start, r.timing[0].exec_end - 1e-12);
    EXPECT_GT(r.total_time, 6e-3);
}

TEST_F(EngineTest, PreloadsSequential)
{
    const auto& cfg = machine_.config();
    double bytes = cfg.hbm_total_bw * 1e-3;
    SimProgram prog;
    prog.ops.push_back(make_op(0, bytes, 1e-4));
    prog.ops.push_back(make_op(1, bytes, 1e-4));
    prog.preload_order = {0, 1};
    prog.issue_slot = {0, 0};
    Engine engine(machine_);
    SimResult r = engine.run(prog);
    EXPECT_GE(r.timing[1].pre_start, r.timing[0].pre_end - 1e-12);
}

TEST_F(EngineTest, FabricContentionStretchesExecution)
{
    const auto& cfg = machine_.config();
    // Execute with a big fetch flow while a preload streams.
    double dram = cfg.hbm_total_bw * 2e-3;
    SimProgram prog;
    SimOp op0 = make_op(0, 0, 1e-4);
    op0.fetch_bytes = machine_.peer_capacity() * 2e-3;
    prog.ops.push_back(op0);
    prog.ops.push_back(make_op(1, dram, 1e-4));
    prog.preload_order = {0, 1};
    prog.issue_slot = {0, 0};
    Engine engine(machine_);
    SimResult contended = engine.run(prog);
    EXPECT_GT(contended.interconnect_stall, 0.0);

    // The same program on an ideal split-fabric machine: no stall on
    // the execute side.
    Machine ideal(machine_.config(), /*ideal_split_fabric=*/true);
    Engine ideal_engine(ideal);
    SimResult split = ideal_engine.run(prog);
    EXPECT_LT(split.total_time, contended.total_time);
}

TEST_F(EngineTest, MemoryAccounting)
{
    SimProgram prog;
    SimOp op = make_op(0, 0, 1e-3);
    op.preload_space = 10 * 1024;
    op.exec_space = 40 * 1024;
    prog.ops.push_back(op);
    prog.finalize_default_order();
    Engine engine(machine_);
    SimResult r = engine.run(prog);
    EXPECT_EQ(r.peak_sram_per_core, 40u * 1024);
    EXPECT_FALSE(r.memory_exceeded);
}

TEST_F(EngineTest, BreakdownSumsToTotal)
{
    const auto& cfg = machine_.config();
    SimProgram prog;
    prog.ops.push_back(make_op(0, cfg.hbm_total_bw * 1e-3, 2e-3));
    prog.ops.push_back(make_op(1, cfg.hbm_total_bw * 0.5e-3, 1e-3));
    prog.finalize_default_order();
    Engine engine(machine_);
    SimResult r = engine.run(prog);
    EXPECT_NEAR(r.preload_only + r.execute_only + r.overlapped,
                r.total_time, 1e-9);
}

TEST(SimProgramTest, ValidateCatchesBadSlots)
{
    SimProgram prog;
    prog.ops.resize(2);
    prog.preload_order = {0, 1};
    prog.issue_slot = {0, 2};  // slot after own execute
    EXPECT_DEATH(prog.validate(), "preload issued after own execute");
}

}  // namespace
}  // namespace elk::sim
