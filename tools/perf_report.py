#!/usr/bin/env python3
"""Reader/validator for bench_perf's BENCH_perf.json (stdlib only).

The perf harness (bench/bench_perf.cc) emits one JSON document per
run: schema "elk-bench-perf/1", run configuration (jobs/warmup/repeat/
fast), and one cell per (phase, name) with the work count, per-repeat
wall seconds, the headline rate (work / min wall), and the FNV-1a
digest of the simulated result. This script is the CI side of that
contract:

    tools/perf_report.py BENCH_perf.json
        print the cells as a table (rate, min wall, digest);
    tools/perf_report.py --check BENCH_perf.json
        validate the schema and invariants, exit 1 on any violation
        (the CI perf job's malformed-output gate);
    tools/perf_report.py --digests BENCH_perf.json
        print "phase name digest" lines in cell order — diffing this
        between --jobs 1 and --jobs N runs (or between two commits)
        proves the simulated results are bit-identical;
    tools/perf_report.py --baseline OLD.json NEW.json
        print the per-cell rate ratio NEW/OLD (the trajectory view),
        failing if a common cell's digest changed or a baseline cell
        vanished; cells only in NEW (a PR added a bench phase) are
        printed as notes, not errors.
"""

import argparse
import json
import sys

SCHEMA = "elk-bench-perf/1"


def load(path):
    with open(path, encoding="utf-8") as f:
        return json.load(f)


def check(doc):
    """Returns a list of schema/invariant violations (empty = ok)."""
    errors = []

    def need(cond, msg):
        if not cond:
            errors.append(msg)
        return cond

    if not need(isinstance(doc, dict), "top level is not an object"):
        return errors
    need(doc.get("schema") == SCHEMA,
         f"schema is {doc.get('schema')!r}, expected {SCHEMA!r}")
    need(isinstance(doc.get("fast"), bool), "fast is not a bool")
    need(isinstance(doc.get("jobs"), int) and doc.get("jobs", -1) >= 0,
         "jobs is not a non-negative int")
    warmup = doc.get("warmup")
    repeat = doc.get("repeat")
    need(isinstance(warmup, int) and warmup >= 0,
         "warmup is not a non-negative int")
    need(isinstance(repeat, int) and repeat >= 1,
         "repeat is not a positive int")
    cells = doc.get("cells")
    if not need(isinstance(cells, list) and cells, "cells is empty"):
        return errors
    seen = set()
    for i, cell in enumerate(cells):
        where = f"cells[{i}]"
        if not need(isinstance(cell, dict), f"{where} is not an object"):
            continue
        for key in ("phase", "name", "unit", "digest"):
            need(isinstance(cell.get(key), str) and cell.get(key),
                 f"{where}.{key} is not a non-empty string")
        digest = cell.get("digest", "")
        need(len(digest) == 16
             and all(c in "0123456789abcdef" for c in digest),
             f"{where}.digest is not 16 lowercase hex digits")
        ident = (cell.get("phase"), cell.get("name"))
        need(ident not in seen, f"{where} duplicates cell {ident}")
        seen.add(ident)
        work = cell.get("work")
        need(isinstance(work, (int, float)) and work > 0,
             f"{where}.work is not positive")
        wall = cell.get("wall_s")
        if need(isinstance(wall, list), f"{where}.wall_s is not a list"):
            need(len(wall) == repeat,
                 f"{where}.wall_s has {len(wall)} entries, "
                 f"expected repeat={repeat}")
            need(all(isinstance(w, (int, float)) and w > 0
                     for w in wall),
                 f"{where}.wall_s entries must be positive numbers")
            if wall and all(isinstance(w, (int, float)) for w in wall):
                need(abs(cell.get("wall_min_s", -1) - min(wall))
                     <= 1e-12 * max(min(wall), 1.0),
                     f"{where}.wall_min_s does not match min(wall_s)")
        rate = cell.get("rate")
        need(isinstance(rate, (int, float)) and rate > 0,
             f"{where}.rate is not positive")
    return errors


def print_table(doc):
    rows = [("phase", "cell", "rate", "unit", "wall_min(s)", "digest")]
    for cell in doc["cells"]:
        rows.append((cell["phase"], cell["name"],
                     f"{cell['rate']:.4g}", cell["unit"],
                     f"{cell['wall_min_s']:.6f}", cell["digest"]))
    widths = [max(len(r[i]) for r in rows) for i in range(len(rows[0]))]
    for row in rows:
        print("  ".join(c.ljust(w) for c, w in zip(row, widths)).rstrip())


def print_digests(doc):
    for cell in doc["cells"]:
        print(f"{cell['phase']} {cell['name']} {cell['digest']}")


def compare(old_doc, new_doc):
    """Prints NEW/OLD rate ratios; returns violations (digest drift on
    common cells, cells that vanished from the new run). Cells present
    only in the new run are fine — a PR that adds a bench phase adds
    cells the baseline predates — and are printed as a note instead."""
    errors = []
    old = {(c["phase"], c["name"]): c for c in old_doc["cells"]}
    new = {(c["phase"], c["name"]): c for c in new_doc["cells"]}
    for ident in old.keys() - new.keys():
        errors.append(f"cell {ident} present only in the baseline")
    for ident in sorted(new.keys() - old.keys()):
        print(f"note: cell {ident} is new (not in the baseline); "
              "no ratio to report")
    print(f"{'phase':<14}{'cell':<16}{'old rate':>12}{'new rate':>12}"
          f"{'speedup':>9}")
    for cell in new_doc["cells"]:
        ident = (cell["phase"], cell["name"])
        if ident not in old:
            continue
        o = old[ident]
        if o["digest"] != cell["digest"]:
            errors.append(
                f"cell {ident} digest changed "
                f"{o['digest']} -> {cell['digest']} — the simulated "
                "result drifted, the rate comparison is meaningless")
        ratio = cell["rate"] / o["rate"] if o["rate"] > 0 else 0.0
        print(f"{cell['phase']:<14}{cell['name']:<16}"
              f"{o['rate']:>12.4g}{cell['rate']:>12.4g}"
              f"{ratio:>8.2f}x")
    return errors


def main():
    parser = argparse.ArgumentParser(
        description="read/validate BENCH_perf.json")
    parser.add_argument("files", nargs="+",
                        help="BENCH_perf.json path(s)")
    parser.add_argument("--check", action="store_true",
                        help="validate schema and invariants")
    parser.add_argument("--digests", action="store_true",
                        help="print 'phase name digest' lines")
    parser.add_argument("--baseline", action="store_true",
                        help="compare two runs: OLD.json NEW.json")
    args = parser.parse_args()

    if args.baseline:
        if len(args.files) != 2:
            parser.error("--baseline takes exactly OLD.json NEW.json")
        docs = []
        for path in args.files:
            doc = load(path)
            errors = check(doc)
            for err in errors:
                print(f"error: {path}: {err}", file=sys.stderr)
            if errors:
                return 1
            docs.append(doc)
        errors = compare(docs[0], docs[1])
        for err in errors:
            print(f"error: {err}", file=sys.stderr)
        return 1 if errors else 0

    status = 0
    for path in args.files:
        try:
            doc = load(path)
        except (OSError, json.JSONDecodeError) as exc:
            print(f"error: {path}: {exc}", file=sys.stderr)
            status = 1
            continue
        errors = check(doc)
        for err in errors:
            print(f"error: {path}: {err}", file=sys.stderr)
        if errors:
            status = 1
            continue
        if args.digests:
            print_digests(doc)
        elif args.check:
            print(f"{path}: ok ({len(doc['cells'])} cells, "
                  f"repeat {doc['repeat']}, jobs {doc['jobs']})")
        else:
            print_table(doc)
    return status


if __name__ == "__main__":
    sys.exit(main())
