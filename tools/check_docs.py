#!/usr/bin/env python3
"""Documentation consistency checker (stdlib only; CI `docs` job).

Four classes of rot this catches:

 1. Relative markdown links whose target file no longer exists
    (`[text](docs/SERVING.md)`, `[x](../README.md#anchor)`), in every
    tracked *.md file of the repo.
 2. Binary names the docs refer to (`bench_*`, `elkc`, and the
    example programs) whose source file is gone — every such name
    must correspond to a real target: bench/<name>.cc,
    tools/<name>.cc, or examples/<name>.cc. CMake globs those
    directories, so source existence is target existence; the CI job
    additionally builds the listed names (`--list-binaries`) to prove
    they compile.
 3. Command-line flags the user docs name (`--kv-budget`, `--jobs`,
    ...) that no driver actually parses: every `--flag` token in
    README.md, ROADMAP.md, and docs/*.md must appear as a string
    literal in tools/*.{cc,py}, bench/*.{cc,h}, or examples/*.cc,
    except for a small allowlist of external tools' flags (ctest,
    cmake, google-benchmark). This is what stops the docs from
    drifting when a driver renames a flag.
 4. TODO/FIXME markers inside docs/*.md — user docs must not ship
    construction debris.
 5. Report-column rot: the `ServingReport` / `ClusterReport` field
    tables in docs/SERVING.md, docs/CLUSTER.md, and docs/TENANCY.md
    name every field in their first cell (backticked, slash-compressed
    forms like `mean/p50/p95/p99/max_latency` allowed). Each expanded
    field name must appear as a whole word in src/runtime/*.cc — the
    summary()/serialize_bits() implementations — so renaming or
    dropping a report field without updating the docs fails CI.

Usage:
    tools/check_docs.py              # check, exit 1 on any failure
    tools/check_docs.py --list-binaries   # print doc-named binaries
"""

import os
import re
import sys

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

# [text](target) — excluding images and absolute URLs; target may
# carry a #fragment.
LINK_RE = re.compile(r"(?<!\!)\[[^\]]*\]\(([^)\s]+)\)")
# Binary-ish tokens: bench_* always; other names are checked against
# the known binary stems (so prose words never false-positive).
TOKEN_RE = re.compile(r"\b[A-Za-z_][A-Za-z0-9_]*\b")
# A documented command-line flag: --word(-word)*, not part of a
# longer run of dashes (markdown rules / table borders).
DOC_FLAG_RE = re.compile(r"(?<![-\w])--[a-z][a-z0-9_-]*")
# A flag string literal in driver source (same charset as
# DOC_FLAG_RE, or an underscore-flag could never resolve).
SRC_FLAG_RE = re.compile(r'"(--[a-z][a-z0-9_-]*)"')
# Flags of tools the docs legitimately invoke but this repo does not
# parse itself.
EXTERNAL_FLAGS = {
    "--output-on-failure",  # ctest
    "--build",              # cmake
    "--target",             # cmake
    "--benchmark_filter",   # google-benchmark (bench_micro)
    "--list-binaries",      # this script
}
# Root-level docs whose --flag mentions are checked next to docs/*.md
# (user docs; PAPERS/SNIPPETS are reference dumps of external material
# and ISSUE/CHANGES are process logs).
FLAG_CHECKED_DOCS = ("README.md", "ROADMAP.md")
MARKER_RE = re.compile(r"\b(TODO|FIXME)\b")
# Docs whose markdown tables document report fields in their first
# cell; every backticked identifier there must resolve to a field
# used by src/runtime/*.cc.
REPORT_TABLE_DOCS = ("SERVING.md", "CLUSTER.md", "TENANCY.md")
FIELD_RE = re.compile(r"`([A-Za-z][A-Za-z0-9_/]*)`")


def markdown_files():
    out = []
    for root, dirs, files in os.walk(REPO):
        dirs[:] = [
            d
            for d in dirs
            if not d.startswith(".") and not d.startswith("build")
        ]
        for name in files:
            if name.endswith(".md"):
                out.append(os.path.join(root, name))
    return sorted(out)


def known_binaries():
    """Stem -> source path for every buildable driver."""
    stems = {}
    for sub in ("bench", "tools", "examples"):
        directory = os.path.join(REPO, sub)
        if not os.path.isdir(directory):
            continue
        for name in sorted(os.listdir(directory)):
            if name.endswith(".cc"):
                stems[name[: -len(".cc")]] = os.path.join(sub, name)
    return stems


def known_flags():
    """Every --flag string literal a driver parses."""
    flags = set()
    sources = []
    for sub, exts in (
        ("tools", (".cc", ".py")),
        ("bench", (".cc", ".h")),
        ("examples", (".cc",)),
    ):
        directory = os.path.join(REPO, sub)
        if not os.path.isdir(directory):
            continue
        for name in sorted(os.listdir(directory)):
            if name.endswith(exts):
                sources.append(os.path.join(directory, name))
    for src in sources:
        with open(src, encoding="utf-8") as f:
            flags |= set(SRC_FLAG_RE.findall(f.read()))
    return flags


def runtime_source():
    """Concatenated src/runtime/*.cc — where every report field is
    consumed by summary()/serialize_bits()."""
    texts = []
    directory = os.path.join(REPO, "src", "runtime")
    for name in sorted(os.listdir(directory)):
        if name.endswith(".cc"):
            with open(os.path.join(directory, name),
                      encoding="utf-8") as f:
                texts.append(f.read())
    return "\n".join(texts)


def expand_field(token):
    """'mean/p50/p95/p99/max_latency' -> its five field names; a
    token without '/' is already a field name."""
    if "/" not in token:
        return [token]
    parts = token.split("/")
    last = parts[-1]
    if "_" not in last:
        return parts
    _, suffix = last.split("_", 1)
    return [p + "_" + suffix for p in parts[:-1]] + [last]


def check_report_fields(md_path, runtime_src, errors):
    """Every backticked identifier in a markdown table row's first
    cell must appear (whole-word) in src/runtime/*.cc."""
    rel = os.path.relpath(md_path, REPO)
    with open(md_path, encoding="utf-8") as f:
        for lineno, line in enumerate(f, 1):
            stripped = line.lstrip()
            if not stripped.startswith("|"):
                continue
            cells = stripped.split("|")
            if len(cells) < 3:
                continue
            for token in FIELD_RE.findall(cells[1]):
                for field in expand_field(token):
                    if re.search(r"\b%s\b" % re.escape(field),
                                 runtime_src):
                        continue
                    errors.append(
                        f"{rel}:{lineno}: documents report column "
                        f"'{field}' but src/runtime/*.cc never "
                        "mentions it"
                    )


def flag_checked(md_path):
    """User docs whose --flag mentions must resolve to parsed flags."""
    rel = os.path.relpath(md_path, REPO)
    return rel in FLAG_CHECKED_DOCS or rel.startswith("docs" + os.sep)


def check_flags(md_path, flags, errors):
    with open(md_path, encoding="utf-8") as f:
        text = f.read()
    rel = os.path.relpath(md_path, REPO)
    for flag in sorted(set(DOC_FLAG_RE.findall(text))):
        if flag in flags or flag in EXTERNAL_FLAGS:
            continue
        errors.append(
            f"{rel}: names flag '{flag}' but no driver "
            "(tools/*.{cc,py}, bench/*.{cc,h}, examples/*.cc) "
            "parses it"
        )


def check_markers(md_path, errors):
    rel = os.path.relpath(md_path, REPO)
    with open(md_path, encoding="utf-8") as f:
        for lineno, line in enumerate(f, 1):
            match = MARKER_RE.search(line)
            if match:
                errors.append(
                    f"{rel}:{lineno}: contains a {match.group(0)} marker"
                )


def check_links(md_path, errors):
    base = os.path.dirname(md_path)
    with open(md_path, encoding="utf-8") as f:
        text = f.read()
    for match in LINK_RE.finditer(text):
        target = match.group(1)
        if re.match(r"^[a-z]+:", target) or target.startswith("#"):
            continue  # URL or in-page anchor
        path = target.split("#", 1)[0]
        resolved = os.path.normpath(os.path.join(base, path))
        if not os.path.exists(resolved):
            rel = os.path.relpath(md_path, REPO)
            errors.append(f"{rel}: broken link -> {target}")


def doc_binaries(md_path, binaries, errors):
    """Names of binaries this doc mentions; bench_* must resolve."""
    with open(md_path, encoding="utf-8") as f:
        text = f.read()
    named = set()
    for match in TOKEN_RE.finditer(text):
        token = match.group(0)
        after = text[match.end() : match.end() + 1]
        if after == "*" or token.endswith("_"):
            continue  # a glob like bench_* / bench_fig*, not a name
        if token in binaries:
            named.add(token)
        elif token.startswith("bench_"):
            rel = os.path.relpath(md_path, REPO)
            errors.append(
                f"{rel}: names '{token}' but bench/{token}.cc "
                "does not exist"
            )
    return named


def main():
    list_only = "--list-binaries" in sys.argv[1:]
    binaries = known_binaries()
    flags = known_flags()
    runtime_src = runtime_source()
    errors = []
    named = set()
    for md in markdown_files():
        check_links(md, errors)
        # ISSUE.md / CHANGES.md are PR-process logs with free-form
        # shorthand, not user docs; their links are still checked.
        if os.path.basename(md) in ("ISSUE.md", "CHANGES.md"):
            continue
        named |= doc_binaries(md, binaries, errors)
        if flag_checked(md):
            check_flags(md, flags, errors)
        rel = os.path.relpath(md, REPO)
        if rel.startswith("docs" + os.sep):
            check_markers(md, errors)
            if os.path.basename(md) in REPORT_TABLE_DOCS:
                check_report_fields(md, runtime_src, errors)

    if list_only:
        print(" ".join(sorted(named)))
        return 0 if not errors else 1

    for err in errors:
        print(f"error: {err}", file=sys.stderr)
    checked = len(markdown_files())
    if errors:
        print(f"{len(errors)} doc problem(s) in {checked} files",
              file=sys.stderr)
        return 1
    print(f"docs ok: {checked} markdown files, "
          f"{len(named)} binaries referenced")
    return 0


if __name__ == "__main__":
    sys.exit(main())
