#!/usr/bin/env python3
"""Documentation consistency checker (stdlib only; CI `docs` job).

Two classes of rot this catches:

 1. Relative markdown links whose target file no longer exists
    (`[text](docs/SERVING.md)`, `[x](../README.md#anchor)`), in every
    tracked *.md file of the repo.
 2. Binary names the docs refer to (`bench_*`, `elkc`, and the
    example programs) whose source file is gone — every such name
    must correspond to a real target: bench/<name>.cc,
    tools/<name>.cc, or examples/<name>.cc. CMake globs those
    directories, so source existence is target existence; the CI job
    additionally builds the listed names (`--list-binaries`) to prove
    they compile.

Usage:
    tools/check_docs.py              # check, exit 1 on any failure
    tools/check_docs.py --list-binaries   # print doc-named binaries
"""

import os
import re
import sys

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

# [text](target) — excluding images and absolute URLs; target may
# carry a #fragment.
LINK_RE = re.compile(r"(?<!\!)\[[^\]]*\]\(([^)\s]+)\)")
# Binary-ish tokens: bench_* always; other names are checked against
# the known binary stems (so prose words never false-positive).
TOKEN_RE = re.compile(r"\b[A-Za-z_][A-Za-z0-9_]*\b")


def markdown_files():
    out = []
    for root, dirs, files in os.walk(REPO):
        dirs[:] = [
            d
            for d in dirs
            if not d.startswith(".") and d not in ("build", "build-asan")
        ]
        for name in files:
            if name.endswith(".md"):
                out.append(os.path.join(root, name))
    return sorted(out)


def known_binaries():
    """Stem -> source path for every buildable driver."""
    stems = {}
    for sub in ("bench", "tools", "examples"):
        directory = os.path.join(REPO, sub)
        if not os.path.isdir(directory):
            continue
        for name in sorted(os.listdir(directory)):
            if name.endswith(".cc"):
                stems[name[: -len(".cc")]] = os.path.join(sub, name)
    return stems


def check_links(md_path, errors):
    base = os.path.dirname(md_path)
    with open(md_path, encoding="utf-8") as f:
        text = f.read()
    for match in LINK_RE.finditer(text):
        target = match.group(1)
        if re.match(r"^[a-z]+:", target) or target.startswith("#"):
            continue  # URL or in-page anchor
        path = target.split("#", 1)[0]
        resolved = os.path.normpath(os.path.join(base, path))
        if not os.path.exists(resolved):
            rel = os.path.relpath(md_path, REPO)
            errors.append(f"{rel}: broken link -> {target}")


def doc_binaries(md_path, binaries, errors):
    """Names of binaries this doc mentions; bench_* must resolve."""
    with open(md_path, encoding="utf-8") as f:
        text = f.read()
    named = set()
    for match in TOKEN_RE.finditer(text):
        token = match.group(0)
        after = text[match.end() : match.end() + 1]
        if after == "*" or token.endswith("_"):
            continue  # a glob like bench_* / bench_fig*, not a name
        if token in binaries:
            named.add(token)
        elif token.startswith("bench_"):
            rel = os.path.relpath(md_path, REPO)
            errors.append(
                f"{rel}: names '{token}' but bench/{token}.cc "
                "does not exist"
            )
    return named


def main():
    list_only = "--list-binaries" in sys.argv[1:]
    binaries = known_binaries()
    errors = []
    named = set()
    for md in markdown_files():
        check_links(md, errors)
        # ISSUE.md / CHANGES.md are PR-process logs with free-form
        # shorthand, not user docs; their links are still checked.
        if os.path.basename(md) in ("ISSUE.md", "CHANGES.md"):
            continue
        named |= doc_binaries(md, binaries, errors)

    if list_only:
        print(" ".join(sorted(named)))
        return 0 if not errors else 1

    for err in errors:
        print(f"error: {err}", file=sys.stderr)
    checked = len(markdown_files())
    if errors:
        print(f"{len(errors)} doc problem(s) in {checked} files",
              file=sys.stderr)
        return 1
    print(f"docs ok: {checked} markdown files, "
          f"{len(named)} binaries referenced")
    return 0


if __name__ == "__main__":
    sys.exit(main())
