/**
 * @file
 * elkc — the Elk command-line compiler driver.
 *
 * Compiles a model (built-in preset or an .egf graph file) for an
 * ICCA chip configuration, runs it on the simulator, and reports the
 * schedule and measured performance.
 *
 *   elkc --model Llama2-13B --batch 32 --seq 2048 --mode elk-full
 *   elkc --graph my_model.egf --topology mesh --hbm-tbs 8
 *   elkc --model OPT-30B --dump-timing run.csv --timeline
 *
 * The `serve` subcommand drives the event-driven serving runtime
 * instead of a single decode step:
 *
 *   elkc serve --model Llama2-13B --batch 32 --requests 64 --rate 800
 */
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <optional>
#include <sstream>
#include <string>

#include "elk/compiler.h"
#include "elk/device_program.h"
#include "elk/plan_cache.h"
#include "elk/serving_compiler.h"
#include "frontend/graph_io.h"
#include "graph/model_builder.h"
#include "runtime/executor.h"
#include "runtime/metrics.h"
#include "runtime/cluster.h"
#include "runtime/server.h"
#include "runtime/trace_export.h"
#include "util/logging.h"
#include "util/parse.h"
#include "util/thread_pool.h"

namespace {

using namespace elk;

[[noreturn]] void
usage(const char* argv0)
{
    std::printf(
        "usage: %s [options]\n"
        "       %s serve [options]   (serving runtime; see below)\n"
        "  --model NAME      built-in preset (Llama2-13B, Gemma2-27B,\n"
        "                    OPT-30B, Llama2-70B, DiT-XL)\n"
        "  --graph FILE.egf  load a serialized graph instead\n"
        "  --batch N         batch size (default 32)\n"
        "  --seq N           sequence length / KV depth (default 2048)\n"
        "  --mode M          basic|static|elk-dyn|elk-full|ideal\n"
        "  --topology T      all-to-all|mesh (default all-to-all)\n"
        "  --hbm-tbs X       total HBM bandwidth in TB/s (default 16)\n"
        "  --chips N         number of chips (default 4)\n"
        "  --save-graph F    write the built graph as EGF and exit\n"
        "  --dump-timing F   write per-op phase timings as CSV\n"
        "  --timeline        print an ASCII schedule timeline\n"
        "  --program         print the abstract device program head\n"
        "  --jobs N          compiler worker threads (1 serial, 0 = all\n"
        "                    hardware threads; plans are bit-identical\n"
        "                    at any setting)\n"
        "  --passes P        'list' prints the pass pipeline for the\n"
        "                    selected mode and exits; otherwise a\n"
        "                    comma-separated subset of passes to run\n"
        "serve options (with --model/--batch/--seq/--mode/--topology/\n"
        "--hbm-tbs/--chips/--jobs as above):\n"
        "  --requests N      requests to serve (default 64)\n"
        "  --rate R          Poisson arrival rate in requests/s;\n"
        "                    0 = closed loop (default)\n"
        "  --tokens N        decode tokens per request (default 4)\n"
        "  --seed S          arrival trace + tagging seed (default 42)\n"
        "  --prefill-frac F  fraction of requests arriving in the\n"
        "                    prefill phase (default 0 = decode-only)\n"
        "  --high-frac F     fraction of requests that are\n"
        "                    high-priority (default 0)\n"
        "  --prefill-batch N largest prefill batch (default 4)\n"
        "  --prompt-buckets L1,L2,...\n"
        "                    prompt-length buckets prefill programs\n"
        "                    are compiled at (sorted, largest must\n"
        "                    equal --seq); default: powers of two up\n"
        "                    to --seq. A single bucket equal to --seq\n"
        "                    forces full-length prefill\n"
        "  --prompt-dist D   prompt lengths: 'full' (default; every\n"
        "                    prompt is --seq tokens) or\n"
        "                    'geometric:MEAN' (seeded geometric tail\n"
        "                    of that mean, clamped to --seq)\n"
        "  --policy P        residency policy: retire-order (default)\n"
        "                    or frequency\n"
        "  --kv-budget KB    per-core KV residency budget in KB; each\n"
        "                    request's decode KV state then occupies\n"
        "                    SRAM next to resident weights (0 =\n"
        "                    default: KV modeling off)\n"
        "  --kv-bytes-per-token B\n"
        "                    KV bytes one token appends machine-wide\n"
        "                    (default 0 = derive from the model\n"
        "                    geometry: 2 x layers x kv_heads x\n"
        "                    head_dim x dtype)\n"
        "  --prefix-pop N    distinct shared prompt prefixes, drawn\n"
        "                    Zipf per session (default 0 = prefix\n"
        "                    sharing off; requires --kv-budget > 0)\n"
        "  --turns T         mean prefill turns per session\n"
        "                    (geometric tail; default 1; requires\n"
        "                    --kv-budget > 0)\n"
        "  --think-time S    mean think-time in seconds between a\n"
        "                    session's turns (exponential; default 0;\n"
        "                    requires --kv-budget > 0)\n"
        "  --burst F         arrival burstiness: bursts run at F x\n"
        "                    the mean rate for ~10%% of the time\n"
        "                    (F in [1, 10); default 1 = plain\n"
        "                    Poisson; requires --kv-budget > 0)\n"
        "  --no-preempt      high-priority arrivals never interrupt a\n"
        "                    running iteration\n"
        "  --no-residency    re-preload weights every iteration\n"
        "  --cache-keys      list the plan-cache entries after serving\n"
        "  --replicas N      chip replicas behind the cluster router\n"
        "                    (default 1 = single-chip serving; > 1\n"
        "                    routes the trace across N replicas)\n"
        "  --router P        cluster router policy: rr (round-robin,\n"
        "                    default), least (least-loaded), or\n"
        "                    affinity (session-affinity; requires\n"
        "                    --prefix-pop > 0)\n"
        "  --interconnect T  chip-to-chip fabric: ring (default) or\n"
        "                    fullmesh; per-hop latency + per-byte\n"
        "                    bandwidth priced on KV migrations\n"
        "  --migrate-kv      migrate shared prefix KV segments across\n"
        "                    chips over the interconnect instead of\n"
        "                    re-prefilling per replica (requires\n"
        "                    --kv-budget > 0 and --prefix-pop > 0)\n"
        "  --prefill-replicas N\n"
        "                    dedicate the first N replicas to prompt\n"
        "                    ingestion, feeding the rest KV over the\n"
        "                    interconnect (requires --kv-budget > 0\n"
        "                    and N < --replicas)\n"
        "  --tenants N       tenants sharing the chip under weighted\n"
        "                    fair token shares, tagged per request\n"
        "                    from the trace seed (default 1; > 1\n"
        "                    enables SLO scheduling — docs/TENANCY.md)\n"
        "  --slo S           per-request completion deadline of\n"
        "                    arrival + S seconds, served earliest-\n"
        "                    deadline-first (default 0 = no deadlines;\n"
        "                    > 0 enables SLO scheduling)\n"
        "  --tenant-shares W1,W2,...\n"
        "                    per-tenant fairness weights, one positive\n"
        "                    weight per tenant (requires --tenants >=\n"
        "                    2; default: equal shares)\n"
        "  --preempt-budget N\n"
        "                    deadline preemptions one request may\n"
        "                    trigger (default 1; 0 disables deadline\n"
        "                    preemption; requires SLO scheduling)\n"
        "  --prefill-chunk N\n"
        "                    split prompts into chunks of at most N\n"
        "                    tokens (a power of two), interleaving\n"
        "                    decode between chunks (default 0 = off;\n"
        "                    needs a multi-entry prompt bucket ladder\n"
        "                    — docs/SERVING.md)\n"
        "  --kv-locality     decode claiming prefers requests whose\n"
        "                    KV segment is still resident; spilled\n"
        "                    requests run only when nothing resident\n"
        "                    can (requires --kv-budget > 0)\n",
        argv0, argv0);
    std::exit(2);
}

compiler::Mode
parse_mode(const std::string& mode)
{
    if (mode == "basic") return compiler::Mode::kBasic;
    if (mode == "static") return compiler::Mode::kStatic;
    if (mode == "elk-dyn") return compiler::Mode::kElkDyn;
    if (mode == "elk-full") return compiler::Mode::kElkFull;
    if (mode == "ideal") return compiler::Mode::kIdeal;
    util::fatal("unknown mode: " + mode);
}

hw::ChipConfig
parse_target(const std::string& topology, double hbm_tbs, int chips)
{
    hw::ChipConfig chip = hw::ChipConfig::ipu_pod4();
    chip.num_chips = chips;
    chip.hbm_total_bw = hbm_tbs * 1e12;
    if (topology == "mesh") {
        chip.topology = hw::TopologyKind::kMesh2D;
    } else if (topology != "all-to-all") {
        util::fatal("unknown topology: " + topology);
    }
    return chip;
}

/// The `elkc serve` subcommand: compile a decode-step family through
/// the plan cache and serve an arrival trace on the event-driven
/// runtime. @p argv0 is the real program name (argv here starts at
/// the subcommand), so usage() prints an invocable command line.
int
serve_main(int argc, char** argv, const char* argv0)
{
    std::string model_name = "Llama2-13B";
    std::string mode_name = "elk-full";
    std::string topology = "all-to-all";
    double hbm_tbs = 16.0;
    int chips = 4;
    int batch = 32;
    int seq = 2048;
    int requests = 64;
    double rate = 0.0;
    int tokens = 4;
    int seed = 42;
    int jobs = 1;
    double prefill_frac = 0.0;
    double high_frac = 0.0;
    int prefill_batch = 4;
    std::string prompt_buckets_arg;
    std::string prompt_dist = "full";
    std::string policy = "retire-order";
    int kv_budget_kb = 0;
    int kv_bytes_per_token = 0;
    int prefix_pop = 0;
    double turns = 1.0;
    double think_time = 0.0;
    double burst = 1.0;
    bool preempt = true;
    bool residency = true;
    bool cache_keys = false;
    int replicas = 1;
    std::string router = "rr";
    std::string interconnect = "ring";
    bool migrate_kv = false;
    int prefill_replicas = 0;
    int tenants = 1;
    double slo_s = 0.0;
    std::string tenant_shares_arg;
    int preempt_budget = 1;
    bool preempt_budget_set = false;
    int prefill_chunk = 0;
    bool kv_locality = false;

    for (int i = 1; i < argc; ++i) {
        auto arg = [&](const char* flag) {
            if (std::strcmp(argv[i], flag) != 0) {
                return static_cast<const char*>(nullptr);
            }
            if (i + 1 >= argc) {
                usage(argv0);
            }
            return static_cast<const char*>(argv[++i]);
        };
        if (const char* v = arg("--model")) {
            model_name = v;
        } else if (const char* v = arg("--mode")) {
            mode_name = v;
        } else if (const char* v = arg("--topology")) {
            topology = v;
        } else if (const char* v = arg("--hbm-tbs")) {
            hbm_tbs = util::parse_double_arg(v, "--hbm-tbs", 1e-3, 1e6);
        } else if (const char* v = arg("--chips")) {
            chips = util::parse_int_arg(v, "--chips", 1, 4096);
        } else if (const char* v = arg("--batch")) {
            batch = util::parse_int_arg(v, "--batch", 1, 4096);
        } else if (const char* v = arg("--seq")) {
            seq = util::parse_int_arg(v, "--seq", 1, 1 << 20);
        } else if (const char* v = arg("--requests")) {
            requests = util::parse_int_arg(v, "--requests", 1, 1 << 20);
        } else if (const char* v = arg("--rate")) {
            rate = util::parse_double_arg(v, "--rate", 0.0, 1e9);
        } else if (const char* v = arg("--tokens")) {
            tokens = util::parse_int_arg(v, "--tokens", 1, 1 << 20);
        } else if (const char* v = arg("--seed")) {
            seed = util::parse_int_arg(v, "--seed", 0,
                                       std::numeric_limits<int>::max());
        } else if (const char* v = arg("--jobs")) {
            jobs = util::ThreadPool::parse_jobs_arg(v, "--jobs");
        } else if (const char* v = arg("--prefill-frac")) {
            prefill_frac =
                util::parse_double_arg(v, "--prefill-frac", 0.0, 1.0);
        } else if (const char* v = arg("--high-frac")) {
            high_frac =
                util::parse_double_arg(v, "--high-frac", 0.0, 1.0);
        } else if (const char* v = arg("--prefill-batch")) {
            prefill_batch =
                util::parse_int_arg(v, "--prefill-batch", 1, 4096);
        } else if (const char* v = arg("--prompt-buckets")) {
            prompt_buckets_arg = v;
        } else if (const char* v = arg("--prompt-dist")) {
            prompt_dist = v;
        } else if (const char* v = arg("--policy")) {
            policy = v;
        } else if (const char* v = arg("--kv-budget")) {
            kv_budget_kb =
                util::parse_int_arg(v, "--kv-budget", 0, 1 << 30);
        } else if (const char* v = arg("--kv-bytes-per-token")) {
            kv_bytes_per_token = util::parse_int_arg(
                v, "--kv-bytes-per-token", 0, 1 << 30);
        } else if (const char* v = arg("--prefix-pop")) {
            prefix_pop =
                util::parse_int_arg(v, "--prefix-pop", 0, 1 << 20);
        } else if (const char* v = arg("--turns")) {
            turns = util::parse_double_arg(v, "--turns", 1.0, 1e6);
        } else if (const char* v = arg("--think-time")) {
            think_time =
                util::parse_double_arg(v, "--think-time", 0.0, 1e9);
        } else if (const char* v = arg("--burst")) {
            burst = util::parse_double_arg(v, "--burst", 1.0,
                                           10.0 - 1e-9);
        } else if (const char* v = arg("--replicas")) {
            replicas = util::parse_int_arg(v, "--replicas", 1, 4096);
        } else if (const char* v = arg("--router")) {
            router = v;
        } else if (const char* v = arg("--interconnect")) {
            interconnect = v;
        } else if (const char* v = arg("--prefill-replicas")) {
            prefill_replicas =
                util::parse_int_arg(v, "--prefill-replicas", 0, 4096);
        } else if (const char* v = arg("--tenants")) {
            tenants = util::parse_int_arg(v, "--tenants", 1, 1 << 20);
        } else if (const char* v = arg("--slo")) {
            slo_s = util::parse_double_arg(v, "--slo", 0.0, 1e9);
        } else if (const char* v = arg("--tenant-shares")) {
            tenant_shares_arg = v;
        } else if (const char* v = arg("--preempt-budget")) {
            preempt_budget =
                util::parse_int_arg(v, "--preempt-budget", 0, 1 << 20);
            preempt_budget_set = true;
        } else if (const char* v = arg("--prefill-chunk")) {
            prefill_chunk =
                util::parse_int_arg(v, "--prefill-chunk", 0, 1 << 20);
        } else if (std::strcmp(argv[i], "--kv-locality") == 0) {
            kv_locality = true;
        } else if (std::strcmp(argv[i], "--migrate-kv") == 0) {
            migrate_kv = true;
        } else if (std::strcmp(argv[i], "--no-preempt") == 0) {
            preempt = false;
        } else if (std::strcmp(argv[i], "--no-residency") == 0) {
            residency = false;
        } else if (std::strcmp(argv[i], "--cache-keys") == 0) {
            cache_keys = true;
        } else {
            usage(argv0);
        }
    }
    // Strict parses of the structured flags: a malformed bucket list
    // or distribution spec is fatal, never silently defaulted.
    std::vector<int> prompt_buckets;
    if (!prompt_buckets_arg.empty()) {
        // getline never yields the empty element after a trailing
        // delimiter, so reject it up front.
        if (prompt_buckets_arg.back() == ',') {
            util::fatal("--prompt-buckets: trailing ','");
        }
        std::stringstream ss(prompt_buckets_arg);
        std::string item;
        while (std::getline(ss, item, ',')) {
            prompt_buckets.push_back(util::parse_int_arg(
                item.c_str(), "--prompt-buckets", 1, 1 << 20));
        }
    }
    double prompt_mean = 0.0;  // 0 = full-length prompts
    if (prompt_dist.rfind("geometric:", 0) == 0) {
        prompt_mean = util::parse_double_arg(
            prompt_dist.c_str() + std::strlen("geometric:"),
            "--prompt-dist geometric:", 1e-9, 1e9);
    } else if (prompt_dist != "full") {
        util::fatal("unknown prompt distribution: " + prompt_dist +
                    " (expected 'full' or 'geometric:MEAN')");
    }
    sim::ResidencyPolicy residency_policy;
    if (policy == "retire-order") {
        residency_policy = sim::ResidencyPolicy::kRetireOrder;
    } else if (policy == "frequency") {
        residency_policy = sim::ResidencyPolicy::kFrequencyAware;
    } else {
        util::fatal("unknown residency policy: " + policy);
    }
    runtime::RouterPolicy router_policy;
    if (router == "rr") {
        router_policy = runtime::RouterPolicy::kRoundRobin;
    } else if (router == "least") {
        router_policy = runtime::RouterPolicy::kLeastLoaded;
    } else if (router == "affinity") {
        router_policy = runtime::RouterPolicy::kSessionAffinity;
    } else {
        util::fatal("unknown router policy: " + router +
                    " (expected 'rr', 'least', or 'affinity')");
    }
    hw::InterconnectConfig fabric;
    if (interconnect == "ring") {
        fabric.kind = hw::InterconnectKind::kRing;
    } else if (interconnect == "fullmesh") {
        fabric.kind = hw::InterconnectKind::kFullMesh;
    } else {
        util::fatal("unknown interconnect: " + interconnect +
                    " (expected 'ring' or 'fullmesh')");
    }
    // The session/prefix flags are only meaningful with KV modeling
    // on: shared prefixes and per-turn KV reuse live in the modeled
    // KV pool, so serving a session trace at --kv-budget 0 would
    // silently drop the very effect being measured.
    const bool session_trace = prefix_pop > 0 || turns > 1.0 ||
                               think_time > 0.0 || burst > 1.0;
    if (session_trace && kv_budget_kb == 0) {
        util::fatal(
            "--prefix-pop/--turns/--think-time/--burst need KV "
            "modeling: pass --kv-budget KB > 0 (shared prefixes and "
            "multi-turn KV reuse live in the modeled KV pool)");
    }
    // SLO scheduling (docs/TENANCY.md) switches on when anything
    // multi-tenant or deadline-shaped is asked for; the satellite
    // flags alone make no sense without it.
    std::vector<double> tenant_shares;
    if (!tenant_shares_arg.empty()) {
        if (tenants < 2) {
            util::fatal(
                "--tenant-shares needs --tenants >= 2: share weights "
                "divide the fairness window between tenants, and a "
                "single tenant always owns the whole window");
        }
        if (tenant_shares_arg.back() == ',') {
            util::fatal("--tenant-shares: trailing ','");
        }
        std::stringstream ss(tenant_shares_arg);
        std::string item;
        while (std::getline(ss, item, ',')) {
            tenant_shares.push_back(util::parse_double_arg(
                item.c_str(), "--tenant-shares", 1e-9, 1e9));
        }
        if (static_cast<int>(tenant_shares.size()) != tenants) {
            util::fatal("--tenant-shares: got " +
                        std::to_string(tenant_shares.size()) +
                        " weights for --tenants " +
                        std::to_string(tenants) +
                        " (pass exactly one positive weight per "
                        "tenant)");
        }
    }
    const bool slo_serving = tenants > 1 || slo_s > 0.0;
    if (preempt_budget_set && !slo_serving) {
        util::fatal(
            "--preempt-budget bounds deadline-triggered preemption, "
            "which only runs under SLO scheduling: pass --tenants >= "
            "2 or --slo S > 0 as well");
    }
    // Chunked prefill splits prompts across the (batch, length) bucket
    // grid; with the single full-length bucket of --prompt-dist full
    // and no --prompt-buckets ladder, every chunk would pad to the
    // full sequence. The Server constructor enforces the same rule on
    // the finalized ladder; this check fires first with flag names.
    if (prefill_chunk > 0 && prompt_buckets.size() == 1) {
        util::fatal(
            "--prefill-chunk needs a multi-entry prompt bucket ladder "
            "(varlen buckets): pass --prompt-buckets with >= 2 "
            "entries, or drop it to use the default power-of-two "
            "ladder");
    }
    if (kv_locality && kv_budget_kb == 0) {
        util::fatal(
            "--kv-locality steers decode claiming by KV residency, "
            "which only exists under KV modeling: pass --kv-budget "
            "KB > 0 as well");
    }

    hw::ChipConfig chip = parse_target(topology, hbm_tbs, chips);
    compiler::CompileOptions copts;
    copts.mode = parse_mode(mode_name);
    compiler::PlanCache cache;
    compiler::ServingCompiler sc(graph::model_by_name(model_name), seq,
                                 chip, copts, &cache, jobs);
    compiler::ServingCompiler pc(
        graph::model_by_name(model_name), seq, chip, copts, &cache,
        jobs, compiler::ServingCompiler::Options::prefill());

    runtime::ServerOptions sopts;
    sopts.max_batch = batch;
    sopts.tokens_per_request = tokens;
    sopts.max_prefill_batch = prefill_batch;
    sopts.max_prompt_len = seq;
    sopts.prompt_buckets = prompt_buckets;
    sopts.keep_resident = residency;
    sopts.residency_policy = residency_policy;
    sopts.preempt = preempt;
    sopts.kv_budget = static_cast<uint64_t>(kv_budget_kb) * 1024;
    sopts.kv_bytes_per_token =
        kv_bytes_per_token > 0
            ? static_cast<uint64_t>(kv_bytes_per_token)
            : graph::kv_bytes_per_token(
                  graph::model_by_name(model_name));
    sopts.prefix_sharing = prefix_pop > 0;
    sopts.slo = slo_serving;
    sopts.tenants = tenants;
    sopts.tenant_shares = tenant_shares;
    sopts.preempt_budget = preempt_budget;
    sopts.prefill_chunk = prefill_chunk;
    sopts.kv_locality = kv_locality;
    std::vector<runtime::Request> trace;
    if (session_trace) {
        runtime::SessionTraceOptions st;
        st.sessions = requests;
        st.rate_per_s = rate;
        st.burst_factor = burst;
        st.mean_turns = turns;
        st.think_time_s = think_time;
        st.decode_tokens = tokens;
        st.max_prompt_len = seq;
        st.prompt_mean_len = prompt_mean;
        st.prefix_population = prefix_pop;
        st.prefix_zipf_s = 1.0;
        st.prefix_mean_len =
            prefix_pop > 0
                ? (prompt_mean > 0.0 ? prompt_mean : seq / 8.0)
                : 0.0;
        trace = runtime::make_session_trace(
            st, static_cast<uint64_t>(seed));
    } else {
        std::vector<double> arrivals =
            rate > 0
                ? runtime::ArrivalTrace::poisson(
                      requests, rate, static_cast<uint64_t>(seed))
                : runtime::ArrivalTrace::closed_loop(requests);
        trace = runtime::make_request_trace(
            arrivals, tokens, prefill_frac, high_frac,
            static_cast<uint64_t>(seed));
        if (prompt_mean > 0.0) {
            runtime::tag_prompt_lengths(trace, seq, prompt_mean,
                                        static_cast<uint64_t>(seed));
        }
    }
    // Tenant/deadline tagging composes with either trace shape (the
    // streams are domain-separated from every other tagger's).
    if (slo_serving) {
        runtime::tag_tenants(trace, tenants,
                             static_cast<uint64_t>(seed));
        if (slo_s > 0.0) {
            runtime::tag_deadlines(trace, slo_s);
        }
    }

    std::printf("serving    : %s, %s, batch %d, seq %d\n",
                model_name.c_str(), sc.mode().c_str(), batch, seq);
    if (session_trace) {
        std::printf("trace      : %d sessions -> %d turns, mean %g "
                    "turns, think %g s, burst x%g, %d shared "
                    "prefixes\n",
                    requests, static_cast<int>(trace.size()), turns,
                    think_time, burst, prefix_pop);
    } else if (rate > 0) {
        std::printf("trace      : %d requests x %d tokens, "
                    "Poisson @ %g req/s\n",
                    requests, tokens, rate);
    } else {
        std::printf("trace      : %d requests x %d tokens, "
                    "closed loop\n",
                    requests, tokens);
    }
    std::printf("scheduler  : prefill-frac %g, high-frac %g, "
                "prompts %s, policy %s, preemption %s\n",
                prefill_frac, high_frac, prompt_dist.c_str(),
                sim::residency_policy_name(residency_policy).c_str(),
                preempt ? "on" : "off");
    if (sopts.kv_budget > 0) {
        std::printf("kv         : budget %d KB/core, %llu bytes/token "
                    "machine-wide\n",
                    kv_budget_kb,
                    static_cast<unsigned long long>(
                        sopts.kv_bytes_per_token));
    }
    if (slo_serving) {
        std::string shares = "equal";
        if (!tenant_shares.empty()) {
            std::ostringstream s;
            for (size_t i = 0; i < tenant_shares.size(); ++i) {
                s << (i ? ":" : "") << tenant_shares[i];
            }
            shares = s.str();
        }
        std::string deadline = "none";
        if (slo_s > 0.0) {
            std::ostringstream d;
            d << "arrival + " << slo_s << " s";
            deadline = d.str();
        }
        std::printf("slo        : %d tenants (shares %s), deadline "
                    "%s, preempt budget %d\n",
                    tenants, shares.c_str(), deadline.c_str(),
                    preempt_budget);
    }
    if (prefill_chunk > 0 || kv_locality) {
        std::printf("chunking   : prefill chunk %d, kv locality %s\n",
                    prefill_chunk, kv_locality ? "on" : "off");
    }
    auto prefill_programs = [&](int b, int len) {
        return pc.program(b, len);
    };
    auto decode_programs = [&](int b) { return sc.program(b); };
    if (replicas > 1 || prefill_replicas > 0 || migrate_kv) {
        runtime::ClusterOptions clopts;
        clopts.replicas = replicas;
        clopts.router = router_policy;
        clopts.server = sopts;
        clopts.interconnect = fabric;
        clopts.migrate_kv = migrate_kv;
        clopts.prefill_replicas = prefill_replicas;
        runtime::Cluster cluster(sc.machine(), clopts);
        std::printf("cluster    : %d replicas (%d prefill tier), "
                    "%s router, %s interconnect, KV migration %s\n",
                    replicas, prefill_replicas,
                    runtime::router_policy_name(router_policy).c_str(),
                    hw::interconnect_name(fabric.kind).c_str(),
                    migrate_kv ? "on" : "off");
        runtime::ClusterReport rep =
            cluster.serve(trace, prefill_programs, decode_programs);
        std::printf("%s\n", rep.summary().c_str());
    } else {
        runtime::Server server(sc.machine(), sopts);
        runtime::ServingReport rep =
            server.serve(trace, prefill_programs, decode_programs);
        std::printf("%s\n", rep.summary().c_str());
    }
    auto stats = cache.stats();
    std::printf("plan cache : %d entries, %lld hits, %lld misses "
                "(compile %.2f s total)\n",
                stats.entries, static_cast<long long>(stats.hits),
                static_cast<long long>(stats.misses),
                sc.compile_seconds() + pc.compile_seconds());
    if (cache_keys) {
        for (const std::string& key : cache.keys()) {
            std::printf("  %s\n", key.c_str());
        }
    }
    return 0;
}

}  // namespace

int
main(int argc, char** argv)
{
    if (argc > 1 && std::strcmp(argv[1], "serve") == 0) {
        return serve_main(argc - 1, argv + 1, argv[0]);
    }
    std::string model_name = "Llama2-13B";
    std::string graph_file;
    std::string save_graph_file;
    std::string dump_timing_file;
    int batch = 32;
    int seq = 2048;
    std::string mode_name = "elk-full";
    std::string topology = "all-to-all";
    double hbm_tbs = 16.0;
    int chips = 4;
    int jobs = 1;
    std::string passes;
    bool show_timeline = false;
    bool show_program = false;

    for (int i = 1; i < argc; ++i) {
        auto arg = [&](const char* flag) {
            if (std::strcmp(argv[i], flag) != 0) {
                return static_cast<const char*>(nullptr);
            }
            if (i + 1 >= argc) {
                usage(argv[0]);
            }
            return static_cast<const char*>(argv[++i]);
        };
        if (const char* v = arg("--model")) {
            model_name = v;
        } else if (const char* v = arg("--graph")) {
            graph_file = v;
        } else if (const char* v = arg("--batch")) {
            batch = util::parse_int_arg(v, "--batch", 1, 4096);
        } else if (const char* v = arg("--seq")) {
            seq = util::parse_int_arg(v, "--seq", 1, 1 << 20);
        } else if (const char* v = arg("--mode")) {
            mode_name = v;
        } else if (const char* v = arg("--topology")) {
            topology = v;
        } else if (const char* v = arg("--hbm-tbs")) {
            hbm_tbs = util::parse_double_arg(v, "--hbm-tbs", 1e-3, 1e6);
        } else if (const char* v = arg("--chips")) {
            chips = util::parse_int_arg(v, "--chips", 1, 4096);
        } else if (const char* v = arg("--save-graph")) {
            save_graph_file = v;
        } else if (const char* v = arg("--dump-timing")) {
            dump_timing_file = v;
        } else if (const char* v = arg("--jobs")) {
            jobs = util::ThreadPool::parse_jobs_arg(v, "--jobs");
        } else if (const char* v = arg("--passes")) {
            passes = v;
        } else if (std::strcmp(argv[i], "--timeline") == 0) {
            show_timeline = true;
        } else if (std::strcmp(argv[i], "--program") == 0) {
            show_program = true;
        } else {
            usage(argv[0]);
        }
    }

    // --- build the workload ---
    std::optional<graph::Graph> model;
    if (!graph_file.empty()) {
        model = frontend::load_graph(graph_file);
    } else if (model_name == "DiT-XL") {
        model = graph::build_dit_graph(graph::dit_xl(), batch, 256);
    } else {
        model = graph::build_decode_graph(
            graph::model_by_name(model_name), batch, seq);
    }
    if (!save_graph_file.empty()) {
        frontend::save_graph(*model, save_graph_file);
        std::printf("wrote %s (%d operators)\n", save_graph_file.c_str(),
                    model->size());
        return 0;
    }

    // --- target ---
    hw::ChipConfig chip = parse_target(topology, hbm_tbs, chips);

    // --- compile & run ---
    compiler::Mode mode = parse_mode(mode_name);
    compiler::CompileOptions opts;
    opts.mode = mode;
    if (passes == "list") {
        // Dry-run: print the pipeline for this mode without building
        // the plan library (which needs the full analysis).
        auto pipeline = compiler::CompilerPipeline::standard();
        compiler::CompileState probe;
        probe.opts = opts;
        auto enabled = pipeline.enabled_passes(probe);
        std::printf("pass pipeline for mode %s:\n",
                    compiler::mode_name(mode).c_str());
        for (const auto& name : pipeline.pass_names()) {
            bool on = std::find(enabled.begin(), enabled.end(), name) !=
                      enabled.end();
            std::printf("  %-22s %s\n", name.c_str(),
                        on ? "run" : "skip (mode-gated)");
        }
        return 0;
    }
    if (!passes.empty()) {
        std::stringstream ss(passes);
        std::string name;
        while (std::getline(ss, name, ',')) {
            if (!name.empty()) {
                opts.pass_filter.push_back(name);
            }
        }
    }
    compiler::Compiler comp(*model, chip, nullptr, jobs);
    auto compiled = comp.compile(opts);
    sim::Machine machine(chip, mode == compiler::Mode::kIdeal);
    auto run = runtime::run_plan(machine, *model, compiled.plan,
                                 comp.context());

    std::printf("model      : %s (%d ops)\n", model->name().c_str(),
                model->size());
    std::printf("target     : %d x %d cores, %s, %.1f TB/s HBM\n",
                chip.num_chips, chip.cores_per_chip,
                hw::topology_name(chip.topology).c_str(), hbm_tbs);
    std::printf("design     : %s (compiled in %.2f s, %d jobs)\n",
                compiled.plan.mode.c_str(), compiled.compile_seconds,
                comp.jobs());
    std::printf("latency    : %s ms\n",
                runtime::ms(run.total_time).c_str());
    std::printf("hbm util   : %s   noc util: %s\n",
                runtime::pct(run.hbm_util).c_str(),
                runtime::pct(run.noc_util).c_str());
    std::printf("tflops     : %.1f\n", run.achieved_tflops);
    std::printf("peak sram  : %lu KB/core (%s)\n",
                static_cast<unsigned long>(run.peak_sram_per_core / 1024),
                run.memory_exceeded ? "EXCEEDED" : "ok");

    if (show_program) {
        auto program = compiler::build_device_program(compiled.plan);
        compiler::DeviceProgram head(
            program.begin(),
            program.begin() + std::min<size_t>(12, program.size()));
        std::printf("\n%s...\n",
                    compiler::to_string(head, *model).c_str());
    }
    if (show_timeline) {
        std::printf("\n%s", runtime::timeline_summary(*model, run).c_str());
    }
    if (!dump_timing_file.empty()) {
        runtime::export_timing(*model, run, dump_timing_file);
        std::printf("wrote %s\n", dump_timing_file.c_str());
    }
    return 0;
}
