/**
 * @file
 * Mixture-of-experts scheduling (paper §7 "Apply Elk to MoE"): all
 * experts share one shape, so Elk optimizes the execution plan for a
 * generic expert at compile time and defers the expert's *preload* to
 * after the routing operator has picked it. This example models that
 * by pinning the FFN preloads' issue slots to follow their layer's
 * router and compares against the unconstrained schedule.
 *
 *   $ ./moe_preload
 */
#include <cstdio>

#include "elk/compiler.h"
#include "graph/model_builder.h"
#include "runtime/executor.h"
#include "runtime/metrics.h"
#include "util/table.h"

namespace {

using namespace elk;

/// Builds a decode graph where each layer's FFN weights are expert
/// weights selected at runtime (same shapes as the dense model).
graph::Graph
build_moe_decode(int batch, int seq)
{
    // Same operator stream as the dense model; the MoE constraint is
    // expressed on the schedule, not the shapes.
    return graph::build_decode_graph(graph::llama2_13b(), batch, seq);
}

/// True for operators whose parameters are expert-selected.
bool
is_expert_op(const graph::Operator& op)
{
    return op.name == "ffn_up" || op.name == "ffn_gate" ||
           op.name == "ffn_down";
}

/// The routing decision for layer L becomes known once the previous
/// operator of that layer's FFN block (ffn_norm) has executed.
int
routing_known_slot(const graph::Graph& g, int expert_op)
{
    for (int i = expert_op; i >= 0; --i) {
        if (g.op(i).layer == g.op(expert_op).layer &&
            g.op(i).name == "ffn_norm") {
            return i;
        }
    }
    return expert_op;
}

}  // namespace

int
main()
{
    using namespace elk;
    hw::ChipConfig chip = hw::ChipConfig::ipu_pod4();
    graph::Graph model = build_moe_decode(32, 2048);

    compiler::Compiler compiler(model, chip);
    compiler::CompileOptions opts;
    opts.mode = compiler::Mode::kElkFull;
    auto compiled = compiler.compile(opts);

    // Dense schedule: as compiled.
    sim::Machine machine(chip);
    auto dense = runtime::run_plan(machine, model, compiled.plan,
                                   compiler.context());

    // MoE schedule: expert preloads cannot be issued before routing is
    // known — clamp their issue slots and re-simulate.
    compiler::ExecutionPlan moe = compiled.plan;
    int clamped = 0;
    for (size_t r = 0; r < moe.preload_order.size(); ++r) {
        int op = moe.preload_order[r];
        if (is_expert_op(model.op(op))) {
            int earliest = routing_known_slot(model, op);
            if (moe.issue_slot[r] < earliest) {
                moe.issue_slot[r] = earliest;
                ++clamped;
            }
        }
    }
    // Restore slot monotonicity after clamping (later preloads can
    // only be issued later).
    for (size_t r = 1; r < moe.issue_slot.size(); ++r) {
        moe.issue_slot[r] =
            std::max(moe.issue_slot[r], moe.issue_slot[r - 1]);
    }
    auto moe_run =
        runtime::run_plan(machine, model, moe, compiler.context());

    util::Table table({"schedule", "latency(ms)", "hbm_util",
                       "overlap(ms)"});
    table.add("dense (preload anytime)", runtime::ms(dense.total_time),
              runtime::pct(dense.hbm_util), runtime::ms(dense.overlapped));
    table.add("MoE (preload after routing)",
              runtime::ms(moe_run.total_time),
              runtime::pct(moe_run.hbm_util),
              runtime::ms(moe_run.overlapped));
    table.print("MoE expert-preload constraint");
    std::printf("\n%d expert preloads deferred until routing; latency "
                "cost of dynamic expert selection: %.2f ms (%.1f%%)\n",
                clamped,
                (moe_run.total_time - dense.total_time) * 1e3,
                100.0 * (moe_run.total_time / dense.total_time - 1.0));
    return 0;
}
