/**
 * @file
 * Quickstart: build a model graph, compile it with Elk, inspect the
 * device program, and measure it on the ICCA chip simulator.
 *
 *   $ ./quickstart
 */
#include <cstdio>

#include "elk/compiler.h"
#include "elk/device_program.h"
#include "graph/model_builder.h"
#include "runtime/executor.h"
#include "runtime/metrics.h"

int
main()
{
    using namespace elk;

    // 1. Describe the target: a 4-chip IPU-POD4-class ICCA system
    //    with 16 TB/s of HBM attached to the inter-core interconnect.
    hw::ChipConfig chip = hw::ChipConfig::ipu_pod4();
    std::printf("Target: %d cores x %d chips, %.0f KB SRAM/core, "
                "%.1f TB/s HBM, %s interconnect\n",
                chip.cores_per_chip, chip.num_chips,
                chip.sram_per_core / 1024.0, chip.hbm_total_bw / 1e12,
                hw::topology_name(chip.topology).c_str());

    // 2. Build the workload: one decoding step of Llama2-13B at batch
    //    32 with a 2048-token KV cache.
    graph::Graph model =
        graph::build_decode_graph(graph::llama2_13b(), 32, 2048);
    std::printf("Workload: %s, %d operators, %.1f GB from HBM per "
                "token, %.1f GFLOP\n",
                model.name().c_str(), model.size(),
                model.total_hbm_bytes() / 1e9,
                model.total_flops() / 1e9);

    // 3. Compile with the full Elk pipeline: inductive scheduling,
    //    cost-aware memory allocation, preload order permutation.
    compiler::Compiler compiler(model, chip);
    compiler::CompileOptions options;
    options.mode = compiler::Mode::kElkFull;
    compiler::CompileResult compiled = compiler.compile(options);
    std::printf("\nCompiled in %.2f s (N=%d ops, P=%d plans/op, K=%d "
                "fit on-chip, %d preload orders tested)\n",
                compiled.compile_seconds, compiled.stats.n_ops,
                compiled.stats.max_plans, compiled.stats.max_fit_window,
                compiled.stats.orders_tested);

    // 4. Peek at the abstract device program (§4.5 of the paper).
    auto program = compiler::build_device_program(compiled.plan);
    std::printf("\nDevice program head:\n");
    compiler::DeviceProgram head(program.begin(), program.begin() + 8);
    std::printf("%s...\n", compiler::to_string(head, model).c_str());

    // 5. Execute on the simulator and report.
    sim::Machine machine(chip);
    sim::SimResult run =
        runtime::run_plan(machine, model, compiled.plan,
                          compiler.context());
    std::printf("Result: %s\n", run.summary().c_str());
    std::printf("  per-token latency : %s ms\n",
                runtime::ms(run.total_time).c_str());
    std::printf("  HBM utilization   : %s\n",
                runtime::pct(run.hbm_util).c_str());
    std::printf("  NoC utilization   : %s (preload %s, inter-core %s)\n",
                runtime::pct(run.noc_util).c_str(),
                runtime::pct(run.noc_util_preload).c_str(),
                runtime::pct(run.noc_util_peer).c_str());
    return 0;
}
