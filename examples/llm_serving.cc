/**
 * @file
 * LLM serving scenario: drive the disaggregated serving runtime with
 * an arrival trace and compare all five designs (Basic, Static,
 * Elk-Dyn, Elk-Full, Ideal) on tail latency, time-to-first-token, and
 * goodput. Prefill-phase requests are batched into full-sequence
 * prefill iterations; decode iterations run back to back on the same
 * resumable engine state, so steady-state steps reuse weights left
 * resident in SRAM instead of re-preloading them. High-priority
 * requests preempt running all-normal iterations at the next operator
 * boundary.
 *
 *   $ ./llm_serving [model] [batch] [seq] [requests] [rate] [tokens] \
 *                   [prefill_frac] [high_frac] [prompt_mean] \
 *                   [kv_budget_kb] [prefix_pop] [turns] [replicas] \
 *                   [tenants] [slo_s] [prefill_chunk]
 *   $ ./llm_serving Llama2-13B 32 2048 64 0 4 0.5 0.1 256 2048
 *   $ ./llm_serving Llama2-13B 32 2048 48 0 4 0 0 256 2048 8 3
 *   $ ./llm_serving Llama2-13B 32 2048 48 0 4 0 0 256 2048 8 3 4
 *   $ ./llm_serving Llama2-13B 32 2048 64 40 4 0.5 0 256 0 0 1 1 3 0.5
 *   $ ./llm_serving Llama2-13B 32 2048 64 0 4 0.5 0 256 2048 0 1 1 1 0 512
 *
 * rate 0 (default) = closed loop (every request queued at t = 0);
 * rate > 0 = Poisson open loop at that many requests/s.
 * prefill_frac (default 0) tags that fraction of requests as
 * prefill-phase; high_frac (default 0) as high-priority.
 * prompt_mean (default 0) draws seeded geometric prompt lengths of
 * that mean (clamped to seq), served through the (batch,
 * prompt-length) prefill bucket grid; 0 = every prompt is seq tokens.
 * kv_budget_kb (default 0 = KV modeling off) caps the per-core SRAM
 * each design may hold of decode KV state — requests' KV segments
 * then compete with resident weights, spill to HBM past the budget,
 * and backpressure prompt admission (docs/SERVING.md).
 * prefix_pop / turns (defaults 0 / 1) switch to a conversational
 * session trace: `requests` sessions of `turns` mean prefill turns,
 * each session reusing one of prefix_pop Zipf-shared prompt prefixes
 * whose KV is cached and refcount-shared across requests (prefix
 * sharing on when prefix_pop > 0). Both require kv_budget_kb > 0 —
 * shared prefixes live in the modeled KV pool, so asking for them
 * without KV modeling is a fatal error rather than a silent no-op.
 * replicas (default 1) scales out to a cluster of that many chip
 * replicas behind the deterministic router (session-affinity with KV
 * migration over a ring interconnect when prefix_pop > 0, plain
 * round-robin otherwise) and prints the cluster roll-up per design —
 * goodput, per-replica token skew, interconnect traffic
 * (docs/CLUSTER.md).
 * tenants / slo_s (defaults 1 / 0) switch on multi-tenant SLO
 * scheduling (docs/TENANCY.md): requests are tagged across `tenants`
 * seeded tenants served EDF under equal fairness shares, each with a
 * deadline of arrival + slo_s seconds when slo_s > 0, and the tables
 * grow SLO-attainment / deadline-miss / p99-lateness columns.
 * prefill_chunk (default 0 = off) splits every prompt into
 * power-of-two chunks of at most that many tokens, interleaving a
 * decode iteration between chunks so decode latency no longer stalls
 * behind whole long prompts (docs/SERVING.md).
 */
#include <cstdio>
#include <string>

#include "elk/plan_cache.h"
#include "elk/serving_compiler.h"
#include "graph/model_builder.h"
#include "runtime/cluster.h"
#include "runtime/metrics.h"
#include "runtime/server.h"
#include "util/logging.h"
#include "util/parse.h"
#include "util/table.h"

int
main(int argc, char** argv)
{
    using namespace elk;
    std::string name = argc > 1 ? argv[1] : "Llama2-13B";
    int batch = argc > 2
                    ? util::parse_int_arg(argv[2], "batch", 1, 4096)
                    : 32;
    int seq = argc > 3 ? util::parse_int_arg(argv[3], "seq", 1, 1 << 20)
                       : 2048;
    int requests =
        argc > 4 ? util::parse_int_arg(argv[4], "requests", 1, 1 << 20)
                 : 64;
    double rate =
        argc > 5 ? util::parse_double_arg(argv[5], "rate", 0.0, 1e9)
                 : 0.0;
    int tokens = argc > 6
                     ? util::parse_int_arg(argv[6], "tokens", 1, 1 << 20)
                     : 4;
    double prefill_frac =
        argc > 7
            ? util::parse_double_arg(argv[7], "prefill_frac", 0.0, 1.0)
            : 0.0;
    double high_frac =
        argc > 8
            ? util::parse_double_arg(argv[8], "high_frac", 0.0, 1.0)
            : 0.0;
    double prompt_mean =
        argc > 9
            ? util::parse_double_arg(argv[9], "prompt_mean", 0.0, 1e9)
            : 0.0;
    int kv_budget_kb =
        argc > 10
            ? util::parse_int_arg(argv[10], "kv_budget_kb", 0, 1 << 30)
            : 0;
    int prefix_pop =
        argc > 11
            ? util::parse_int_arg(argv[11], "prefix_pop", 0, 1 << 20)
            : 0;
    double turns =
        argc > 12
            ? util::parse_double_arg(argv[12], "turns", 1.0, 1e6)
            : 1.0;
    int replicas =
        argc > 13
            ? util::parse_int_arg(argv[13], "replicas", 1, 4096)
            : 1;
    int tenants =
        argc > 14
            ? util::parse_int_arg(argv[14], "tenants", 1, 1 << 20)
            : 1;
    double slo_s =
        argc > 15
            ? util::parse_double_arg(argv[15], "slo_s", 0.0, 1e9)
            : 0.0;
    int prefill_chunk =
        argc > 16
            ? util::parse_int_arg(argv[16], "prefill_chunk", 0, 1 << 20)
            : 0;
    const bool slo_serving = tenants > 1 || slo_s > 0.0;
    const bool session_trace = prefix_pop > 0 || turns > 1.0;
    if (session_trace && kv_budget_kb == 0) {
        util::fatal(
            "prefix_pop/turns need KV modeling: pass kv_budget_kb > 0 "
            "(shared prefixes and multi-turn KV reuse live in the "
            "modeled KV pool)");
    }

    hw::ChipConfig chip = hw::ChipConfig::ipu_pod4();
    graph::ModelConfig model = graph::model_by_name(name);
    std::vector<runtime::Request> trace;
    if (session_trace) {
        runtime::SessionTraceOptions st;
        st.sessions = requests;
        st.rate_per_s = rate;
        st.mean_turns = turns;
        st.decode_tokens = tokens;
        st.max_prompt_len = seq;
        st.prompt_mean_len = prompt_mean;
        st.prefix_population = prefix_pop;
        st.prefix_mean_len =
            prefix_pop > 0
                ? (prompt_mean > 0.0 ? prompt_mean : seq / 8.0)
                : 0.0;
        trace = runtime::make_session_trace(st, /*seed=*/42);
    } else {
        std::vector<double> arrivals =
            rate > 0 ? runtime::ArrivalTrace::poisson(requests, rate,
                                                      /*seed=*/42)
                     : runtime::ArrivalTrace::closed_loop(requests);
        trace = runtime::make_request_trace(
            arrivals, tokens, prefill_frac, high_frac, /*seed=*/42);
        if (prompt_mean > 0.0) {
            runtime::tag_prompt_lengths(trace, seq, prompt_mean,
                                        /*seed=*/42);
        }
    }
    if (slo_serving) {
        runtime::tag_tenants(trace, tenants, /*seed=*/42);
        if (slo_s > 0.0) {
            runtime::tag_deadlines(trace, slo_s);
        }
    }
    std::printf("Serving %s, batch %d, seq %d on %d cores / %.0f TB/s "
                "HBM\n",
                name.c_str(), batch, seq, chip.total_cores(),
                chip.hbm_total_bw / 1e12);
    if (session_trace) {
        std::printf("%d sessions -> %d turns (mean %g/session), "
                    "%d shared prefixes",
                    requests, static_cast<int>(trace.size()), turns,
                    prefix_pop);
    } else if (rate > 0) {
        std::printf("%d requests x %d tokens, Poisson @ %g req/s",
                    requests, tokens, rate);
    } else {
        std::printf("%d requests x %d tokens, closed loop", requests,
                    tokens);
    }
    if (prompt_mean > 0.0) {
        std::printf(" (prefill %g%%, high-priority %g%%, "
                    "geometric prompts ~%g tok)\n\n",
                    prefill_frac * 100, high_frac * 100, prompt_mean);
    } else {
        std::printf(" (prefill %g%%, high-priority %g%%)\n\n",
                    prefill_frac * 100, high_frac * 100);
    }

    if (kv_budget_kb > 0) {
        std::printf("kv residency: %d KB/core budget, %llu bytes/token\n",
                    kv_budget_kb,
                    static_cast<unsigned long long>(
                        graph::kv_bytes_per_token(model)));
    }
    if (slo_serving) {
        if (slo_s > 0.0) {
            std::printf("slo serving : %d tenants (equal shares), "
                        "deadline arrival + %g s\n",
                        tenants, slo_s);
        } else {
            std::printf("slo serving : %d tenants (equal shares), "
                        "no deadlines\n",
                        tenants);
        }
    }
    if (prefill_chunk > 0) {
        std::printf("chunking    : prefill chunk %d tokens\n",
                    prefill_chunk);
    }

    compiler::PlanCache cache;
    if (replicas > 1) {
        // Cluster scale-out: route the same trace across N replicas
        // per design and report the roll-up. Session traces pin
        // sessions to home replicas and migrate shared KV over the
        // ring; plain traces round-robin.
        const bool affinity = prefix_pop > 0;
        std::printf("cluster: %d replicas, %s router, ring "
                    "interconnect, KV migration %s\n\n",
                    replicas, affinity ? "session-affinity"
                                       : "round-robin",
                    affinity ? "on" : "off");
        util::Table table({"design", "tokens/s", "skew", "mean(ms)",
                           "max(ms)", "ttft(ms)", "migr",
                           "wire(KB)", "stall(ms)", "slo%",
                           "missed"});
        for (auto mode :
             {compiler::Mode::kBasic, compiler::Mode::kStatic,
              compiler::Mode::kElkDyn, compiler::Mode::kElkFull,
              compiler::Mode::kIdeal}) {
            compiler::CompileOptions copts;
            copts.mode = mode;
            compiler::ServingCompiler sc(model, seq, chip, copts,
                                         &cache);
            compiler::ServingCompiler pc(
                model, seq, chip, copts, &cache, /*jobs=*/1,
                compiler::ServingCompiler::Options::prefill());
            runtime::ClusterOptions clopts;
            clopts.replicas = replicas;
            clopts.router =
                affinity ? runtime::RouterPolicy::kSessionAffinity
                         : runtime::RouterPolicy::kRoundRobin;
            clopts.migrate_kv = affinity;
            clopts.server.max_batch = batch;
            clopts.server.tokens_per_request = tokens;
            clopts.server.max_prompt_len = seq;
            clopts.server.kv_budget =
                static_cast<uint64_t>(kv_budget_kb) * 1024;
            clopts.server.kv_bytes_per_token =
                graph::kv_bytes_per_token(model);
            clopts.server.prefix_sharing = prefix_pop > 0;
            clopts.server.slo = slo_serving;
            clopts.server.tenants = tenants;
            clopts.server.prefill_chunk = prefill_chunk;
            runtime::Cluster cluster(sc.machine(), clopts);
            runtime::ClusterReport rep = cluster.serve(
                trace,
                [&](int b, int len) { return pc.program(b, len); },
                [&](int b) { return sc.program(b); });
            table.add(sc.mode(), rep.tokens_per_s, rep.util_skew,
                      runtime::ms(rep.mean_latency),
                      runtime::ms(rep.max_latency),
                      runtime::ms(rep.mean_ttft), rep.kv_migrations,
                      rep.interconnect_bytes / 1024,
                      runtime::ms(rep.kv_migration_stall),
                      rep.slo ? runtime::pct(rep.slo_attainment)
                              : std::string("-"),
                      rep.slo ? std::to_string(rep.deadline_misses)
                              : std::string("-"));
        }
        table.print("cluster goodput / balance per design");
    } else {
    util::Table table({"design", "p50(ms)", "p95(ms)", "p99(ms)",
                       "ttft p95(ms)", "tokens/s", "hbm_util", "queue",
                       "preempts", "padded_tok", "kv_peak(KB)",
                       "deferred", "pfx_hits", "saved_tok",
                       "preload first(ms)", "steady(ms)", "slo%",
                       "missed", "late p99(ms)"});

    for (auto mode :
         {compiler::Mode::kBasic, compiler::Mode::kStatic,
          compiler::Mode::kElkDyn, compiler::Mode::kElkFull,
          compiler::Mode::kIdeal}) {
        compiler::CompileOptions copts;
        copts.mode = mode;
        compiler::ServingCompiler sc(model, seq, chip, copts, &cache);
        compiler::ServingCompiler pc(
            model, seq, chip, copts, &cache, /*jobs=*/1,
            compiler::ServingCompiler::Options::prefill());
        runtime::ServerOptions sopts;
        sopts.max_batch = batch;
        sopts.tokens_per_request = tokens;
        sopts.max_prompt_len = seq;
        sopts.kv_budget = static_cast<uint64_t>(kv_budget_kb) * 1024;
        sopts.kv_bytes_per_token = graph::kv_bytes_per_token(model);
        sopts.prefix_sharing = prefix_pop > 0;
        sopts.slo = slo_serving;
        sopts.tenants = tenants;
        sopts.prefill_chunk = prefill_chunk;
        runtime::Server server(sc.machine(), sopts);
        runtime::ServingReport rep = server.serve(
            trace, [&](int b, int len) { return pc.program(b, len); },
            [&](int b) { return sc.program(b); });
        table.add(sc.mode(), runtime::ms(rep.p50_latency),
                  runtime::ms(rep.p95_latency),
                  runtime::ms(rep.p99_latency),
                  runtime::ms(rep.p95_ttft), rep.tokens_per_s,
                  runtime::pct(rep.hbm_util), rep.mean_queue_depth,
                  rep.preemptions,
                  rep.padded_prompt_tokens,
                  rep.kv_bytes_peak / 1024,
                  rep.deferred_admissions,
                  rep.prefix_hits,
                  rep.prefill_tokens_saved,
                  runtime::ms(rep.first_decode_preload),
                  runtime::ms(rep.steady_decode_preload),
                  rep.slo ? runtime::pct(rep.slo_attainment)
                          : std::string("-"),
                  rep.slo ? std::to_string(rep.deadline_misses)
                          : std::string("-"),
                  rep.slo ? runtime::ms(rep.p99_lateness)
                          : std::string("-"));
    }
    table.print("serving tail latency / goodput per design");
    }
    auto stats = cache.stats();
    std::printf("\nplan cache: %d entries, %lld hits, %lld misses\n",
                stats.entries, static_cast<long long>(stats.hits),
                static_cast<long long>(stats.misses));
    return 0;
}
