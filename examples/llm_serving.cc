/**
 * @file
 * LLM serving scenario: compare all five designs (Basic, Static,
 * Elk-Dyn, Elk-Full, Ideal) on decoding latency for a chosen model,
 * like the paper's Fig. 17 but for a single configuration you can
 * play with from the command line:
 *
 *   $ ./llm_serving [model] [batch] [seq]
 *   $ ./llm_serving Llama2-70B 64 4096
 */
#include <cstdio>
#include <cstdlib>

#include "elk/compiler.h"
#include "graph/model_builder.h"
#include "runtime/executor.h"
#include "runtime/metrics.h"
#include "util/table.h"

int
main(int argc, char** argv)
{
    using namespace elk;
    std::string name = argc > 1 ? argv[1] : "Llama2-13B";
    int batch = argc > 2 ? std::atoi(argv[2]) : 32;
    int seq = argc > 3 ? std::atoi(argv[3]) : 2048;

    hw::ChipConfig chip = hw::ChipConfig::ipu_pod4();
    graph::Graph model =
        graph::build_decode_graph(graph::model_by_name(name), batch, seq);
    std::printf("Serving %s, batch %d, seq %d on %d cores / %.0f TB/s "
                "HBM\n\n",
                name.c_str(), batch, seq, chip.total_cores(),
                chip.hbm_total_bw / 1e12);

    compiler::Compiler compiler(model, chip);
    util::Table table({"design", "latency(ms)", "tokens/s", "hbm_util",
                       "noc_util", "TFLOPS", "noc_stall(ms)"});

    sim::SimResult ideal;
    for (auto mode :
         {compiler::Mode::kBasic, compiler::Mode::kStatic,
          compiler::Mode::kElkDyn, compiler::Mode::kElkFull,
          compiler::Mode::kIdeal}) {
        compiler::CompileOptions opts;
        opts.mode = mode;
        auto compiled = compiler.compile(opts);
        sim::Machine machine(chip, mode == compiler::Mode::kIdeal);
        auto run = runtime::run_plan(machine, model, compiled.plan,
                                     compiler.context());
        if (mode == compiler::Mode::kIdeal) {
            ideal = run;
        }
        table.add(compiler::mode_name(mode),
                  runtime::ms(run.total_time),
                  static_cast<double>(batch) / run.total_time,
                  runtime::pct(run.hbm_util),
                  runtime::pct(run.noc_util), run.achieved_tflops,
                  runtime::ms(run.interconnect_stall));
    }
    table.print("decode latency per design");
    return 0;
}
