/**
 * @file
 * LLM serving scenario: drive the event-driven serving runtime with an
 * arrival trace and compare all five designs (Basic, Static, Elk-Dyn,
 * Elk-Full, Ideal) on tail latency and goodput. Decode iterations run
 * back to back on one resumable engine state, so steady-state steps
 * reuse weights left resident in SRAM instead of re-preloading them.
 *
 *   $ ./llm_serving [model] [batch] [seq] [requests] [rate] [tokens]
 *   $ ./llm_serving Llama2-13B 32 2048 64 0 4
 *
 * rate 0 (default) = closed loop (every request queued at t = 0);
 * rate > 0 = Poisson open loop at that many requests/s.
 */
#include <cstdio>
#include <string>

#include "elk/plan_cache.h"
#include "elk/serving_compiler.h"
#include "graph/model_builder.h"
#include "runtime/metrics.h"
#include "runtime/server.h"
#include "util/parse.h"
#include "util/table.h"

int
main(int argc, char** argv)
{
    using namespace elk;
    std::string name = argc > 1 ? argv[1] : "Llama2-13B";
    int batch = argc > 2
                    ? util::parse_int_arg(argv[2], "batch", 1, 4096)
                    : 32;
    int seq = argc > 3 ? util::parse_int_arg(argv[3], "seq", 1, 1 << 20)
                       : 2048;
    int requests =
        argc > 4 ? util::parse_int_arg(argv[4], "requests", 1, 1 << 20)
                 : 64;
    double rate =
        argc > 5 ? util::parse_double_arg(argv[5], "rate", 0.0, 1e9)
                 : 0.0;
    int tokens = argc > 6
                     ? util::parse_int_arg(argv[6], "tokens", 1, 1 << 20)
                     : 4;

    hw::ChipConfig chip = hw::ChipConfig::ipu_pod4();
    graph::ModelConfig model = graph::model_by_name(name);
    std::vector<double> arrivals =
        rate > 0 ? runtime::ArrivalTrace::poisson(requests, rate,
                                                  /*seed=*/42)
                 : runtime::ArrivalTrace::closed_loop(requests);
    std::printf("Serving %s, batch %d, seq %d on %d cores / %.0f TB/s "
                "HBM\n",
                name.c_str(), batch, seq, chip.total_cores(),
                chip.hbm_total_bw / 1e12);
    if (rate > 0) {
        std::printf("%d requests x %d tokens, Poisson @ %g req/s\n\n",
                    requests, tokens, rate);
    } else {
        std::printf("%d requests x %d tokens, closed loop\n\n",
                    requests, tokens);
    }

    compiler::PlanCache cache;
    util::Table table({"design", "p50(ms)", "p95(ms)", "p99(ms)",
                       "tokens/s", "hbm_util", "queue",
                       "preload first(ms)", "steady(ms)"});

    for (auto mode :
         {compiler::Mode::kBasic, compiler::Mode::kStatic,
          compiler::Mode::kElkDyn, compiler::Mode::kElkFull,
          compiler::Mode::kIdeal}) {
        compiler::CompileOptions copts;
        copts.mode = mode;
        compiler::ServingCompiler sc(model, seq, chip, copts, &cache);
        runtime::ServerOptions sopts;
        sopts.max_batch = batch;
        sopts.tokens_per_request = tokens;
        runtime::Server server(sc.machine(), sopts);
        runtime::ServingReport rep = server.serve(
            arrivals, [&](int b) { return sc.program(b); });
        table.add(sc.mode(), runtime::ms(rep.p50_latency),
                  runtime::ms(rep.p95_latency),
                  runtime::ms(rep.p99_latency), rep.tokens_per_s,
                  runtime::pct(rep.hbm_util), rep.mean_queue_depth,
                  runtime::ms(rep.first_decode_preload),
                  runtime::ms(rep.steady_decode_preload));
    }
    table.print("serving tail latency / goodput per design");
    auto stats = cache.stats();
    std::printf("\nplan cache: %d entries, %lld hits, %lld misses\n",
                stats.entries, static_cast<long long>(stats.hits),
                static_cast<long long>(stats.misses));
    return 0;
}
