/**
 * @file
 * Architecture design-space exploration (the paper's §6.4 use case):
 * sweep HBM bandwidth and interconnect topology for a future ICCA
 * chip and find the cheapest configuration within a latency target.
 *
 *   $ ./design_space_exploration [target_latency_ms]
 */
#include <cstdio>

#include "elk/compiler.h"
#include "graph/model_builder.h"
#include "runtime/executor.h"
#include "runtime/metrics.h"
#include "util/parse.h"
#include "util/table.h"

int
main(int argc, char** argv)
{
    using namespace elk;
    double target_ms =
        argc > 1
            ? util::parse_double_arg(argv[1], "target_latency_ms",
                                     1e-3, 1e6)
            : 8.0;

    graph::Graph model =
        graph::build_decode_graph(graph::llama2_13b(), 32, 2048);
    std::printf("Exploring ICCA designs for %s decode, target %.1f "
                "ms/token\n",
                model.name().c_str(), target_ms);

    util::Table table({"topology", "hbm(TB/s)", "noc_scale",
                       "latency(ms)", "hbm_util", "noc_util",
                       "meets_target"});

    struct Best {
        double hbm = 1e9;
        std::string desc;
    } best;

    for (auto topo : {hw::TopologyKind::kAllToAll,
                      hw::TopologyKind::kMesh2D}) {
        for (double hbm_tb : {6.0, 8.0, 10.0, 12.0, 16.0}) {
            for (double noc_scale : {1.0, 1.5}) {
                hw::ChipConfig chip = hw::ChipConfig::ipu_pod4();
                chip.topology = topo;
                chip.hbm_total_bw = hbm_tb * 1e12;
                chip.inter_core_link_bw *= noc_scale;
                chip.mesh_link_bw *= noc_scale;

                compiler::Compiler compiler(model, chip);
                compiler::CompileOptions opts;
                opts.mode = compiler::Mode::kElkFull;
                auto compiled = compiler.compile(opts);
                sim::Machine machine(chip);
                auto run = runtime::run_plan(machine, model,
                                             compiled.plan,
                                             compiler.context());
                bool ok = run.total_time * 1e3 <= target_ms;
                table.add(hw::topology_name(topo), hbm_tb, noc_scale,
                          runtime::ms(run.total_time),
                          runtime::pct(run.hbm_util),
                          runtime::pct(run.noc_util), ok ? "yes" : "no");
                if (ok && hbm_tb < best.hbm) {
                    best.hbm = hbm_tb;
                    best.desc = hw::topology_name(topo) + " @ " +
                                std::to_string(hbm_tb) + " TB/s, noc x" +
                                std::to_string(noc_scale);
                }
            }
        }
    }

    table.print("design space sweep (Elk-Full schedules each point)");
    if (!best.desc.empty()) {
        std::printf("\nCheapest HBM configuration meeting the target: "
                    "%s\n",
                    best.desc.c_str());
    } else {
        std::printf("\nNo configuration met the target; raise the "
                    "budget or the latency target.\n");
    }
    return 0;
}
