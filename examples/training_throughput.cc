/**
 * @file
 * Training-throughput scenario (paper §6.4 finding 4): the forward
 * pass of Llama2-13B training is compute-bound, so an ICCA chip can
 * pair with cheap off-chip memory. This example sweeps GDDR-class
 * bandwidths and shows achieved TFLOPS barely moves.
 *
 *   $ ./training_throughput
 */
#include <cstdio>

#include "elk/compiler.h"
#include "graph/model_builder.h"
#include "runtime/executor.h"
#include "runtime/metrics.h"
#include "util/table.h"

int
main()
{
    using namespace elk;
    graph::Graph fwd = graph::build_forward_graph(graph::llama2_13b(),
                                                  /*batch=*/4,
                                                  /*seq=*/2048);
    std::printf("Workload: %s forward pass, %.0f GFLOP, %.1f GB "
                "weights per step\n\n",
                fwd.name().c_str(), fwd.total_flops() / 1e9,
                fwd.total_hbm_bytes() / 1e9);

    util::Table table({"off-chip BW (GB/s)", "latency(ms)",
                       "achieved TFLOPS", "hbm_util", "memory class"});

    for (double gbs : {200.0, 300.0, 400.0, 800.0, 4000.0}) {
        hw::ChipConfig chip = hw::ChipConfig::ipu_pod4();
        chip.hbm_total_bw = gbs * 1e9;
        compiler::Compiler compiler(fwd, chip);
        compiler::CompileOptions opts;
        opts.mode = compiler::Mode::kElkFull;
        auto compiled = compiler.compile(opts);
        sim::Machine machine(chip);
        auto run = runtime::run_plan(machine, fwd, compiled.plan,
                                     compiler.context());
        const char* cls = gbs <= 250    ? "LPDDR"
                          : gbs <= 500  ? "GDDR (cheap)"
                          : gbs <= 1000 ? "GDDR (fast)"
                                        : "HBM (overkill)";
        table.add(gbs, runtime::ms(run.total_time),
                  run.achieved_tflops, runtime::pct(run.hbm_util), cls);
    }
    table.print("training forward pass vs off-chip bandwidth");
    std::printf("\nTakeaway: past a few hundred GB/s the forward pass "
                "is compute-bound — scale FLOPS, buy cheaper memory.\n");
    return 0;
}
