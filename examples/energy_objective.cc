/**
 * @file
 * Energy-aware objectives (paper §7, "apply Elk to other optimization
 * objectives"): rank the compiled designs by energy and by
 * energy-delay product instead of latency alone.
 *
 *   $ ./energy_objective [model]
 */
#include <cstdio>

#include "cost/energy_model.h"
#include "elk/compiler.h"
#include "graph/model_builder.h"
#include "runtime/executor.h"
#include "runtime/metrics.h"
#include "util/table.h"

int
main(int argc, char** argv)
{
    using namespace elk;
    std::string name = argc > 1 ? argv[1] : "Llama2-13B";
    hw::ChipConfig chip = hw::ChipConfig::ipu_pod4();
    graph::Graph model =
        graph::build_decode_graph(graph::model_by_name(name), 32, 2048);

    compiler::Compiler comp(model, chip);
    sim::Machine machine(chip);
    sim::Engine engine(machine);

    util::Table table({"design", "latency(ms)", "energy(J)", "avg power(kW)",
                       "EDP(mJ*s)", "J per token"});
    for (auto mode :
         {compiler::Mode::kBasic, compiler::Mode::kStatic,
          compiler::Mode::kElkDyn, compiler::Mode::kElkFull}) {
        compiler::CompileOptions opts;
        opts.mode = mode;
        auto compiled = comp.compile(opts);
        auto program = runtime::lower_to_sim(model, compiled.plan,
                                             comp.context());
        auto run = engine.run(program);
        auto energy = cost::estimate_energy(
            program, run, chip, machine.traffic().avg_hops());
        table.add(compiler::mode_name(mode),
                  runtime::ms(run.total_time), energy.total(),
                  energy.average_power(run.total_time) / 1e3,
                  energy.total() * run.total_time * 1e3 * 1e3,
                  energy.total() / 32.0);
    }
    table.print(name + " decode: energy objectives (batch 32, seq 2048)");
    std::printf(
        "\nFaster schedules win on energy too: DRAM and compute energy\n"
        "are workload-invariant, so reduced leakage (shorter makespan)\n"
        "and reduced fabric traffic dominate the ranking.\n");
    return 0;
}
